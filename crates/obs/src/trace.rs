//! Request-scoped causal tracing: spans from wire to lock.
//!
//! This module answers "where did this request's time go" — the question
//! the counter/gauge/histogram registry cannot. It samples 1-in-N requests
//! deterministically (seeded, so two runs against the same workload trace
//! the same requests), threads a `trace id` through the request path, and
//! records spans into per-thread ring buffers with the same checksummed
//! wait-free discipline as the flight recorder. A Chrome-trace-event
//! exporter renders the rings into JSON that `chrome://tracing` and
//! Perfetto open directly.
//!
//! # Cost contract
//!
//! The PR 8 obs contract applies: **one relaxed load when disabled.**
//! Every hot-path entry point (`current()`, `active()`, `sample_request()`)
//! gates on a single relaxed load of the `SAMPLE_EVERY` atomic before touching any
//! thread-local or ring state. When sampling is off (the default), tracing
//! costs one `AtomicU32` load per call site.
//!
//! # Span kinds
//!
//! Chrome "X" (complete) events must nest within a thread track. On a
//! work-stealing task pool a task's await-spanning interval is *not*
//! nested with the other tasks the same worker polls during the
//! suspension, so:
//!
//! * [`SpanKind::Sync`] — duration events ("X"). Only for intervals during
//!   which the emitting thread runs nothing else: decode, encode, a
//!   combiner serving a posted record, a single task poll.
//! * [`SpanKind::Async`] — async begin/end pairs ("b"/"e"), matched by
//!   trace id + name, allowed to overlap and cross threads: whole-request,
//!   lock wait, lock hold, task suspension, flush.
//! * [`SpanKind::Instant`] — zero-duration markers ("i").
//!
//! Every span is **one ring record** written at end time (t0, dur, trace
//! id, interned site, kind); the exporter synthesizes the "b"/"e" pair for
//! async spans. This keeps the hot-path store-count constant and makes
//! cancellation safe: dropping an [`AsyncSpan`] emits the record.
//!
//! # Ring ownership
//!
//! Each thread lazily registers one [`TraceRing`] on first write; rings
//! are never deregistered (thread names survive for the exporter). Writers
//! are wait-free single-producer; the exporter is a racing reader that
//! validates a per-slot xor checksum and drops torn records, exactly like
//! the flight recorder.

use core::cell::Cell;
use core::fmt::Write as _;
use core::marker::PhantomData;
use core::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide trace epoch (first call wins).
///
/// Monotonic, cheap (one `Instant::elapsed`), and shared by every span so
/// cross-thread timestamps are comparable. The epoch is pinned lazily; all
/// callers after the first see a consistent origin.
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Sampling
// ---------------------------------------------------------------------------

/// 0 = sampling disabled (the default). N>0 = trace 1 in N requests.
static SAMPLE_EVERY: AtomicU32 = AtomicU32::new(0);
/// Seed mixed into the request counter so the sampled subset is
/// deterministic per seed, not per boot.
static SAMPLE_SEED: AtomicU64 = AtomicU64::new(0);
/// Global request sequence; drives deterministic 1-in-N selection.
static REQ_SEQ: AtomicU64 = AtomicU64::new(0);

/// Enable 1-in-`every` request sampling with a deterministic `seed`, or
/// disable tracing entirely with `every == 0`.
///
/// The seed offsets which residue class of the request sequence is
/// sampled, so repeated runs with the same seed trace the same requests.
pub fn set_sampling(every: u32, seed: u64) {
    SAMPLE_SEED.store(seed, Ordering::Relaxed);
    SAMPLE_EVERY.store(every, Ordering::Relaxed);
}

/// Is sampling configured at all? One relaxed load — the disabled-cost
/// contract every hot path relies on.
#[inline]
pub fn active() -> bool {
    SAMPLE_EVERY.load(Ordering::Relaxed) != 0
}

/// Draw the next request's trace decision.
///
/// Returns `0` (not sampled) or a nonzero trace id. The id is the request
/// sequence number + 1, so ids are unique, dense, and stable for a given
/// seed. Costs one relaxed load when sampling is disabled.
#[inline]
pub fn sample_request() -> u64 {
    let every = SAMPLE_EVERY.load(Ordering::Relaxed);
    if every == 0 {
        return 0;
    }
    let seq = REQ_SEQ.fetch_add(1, Ordering::Relaxed);
    let seed = SAMPLE_SEED.load(Ordering::Relaxed);
    if (seq.wrapping_add(seed)) % u64::from(every) == 0 {
        seq + 1
    } else {
        0
    }
}

// ---------------------------------------------------------------------------
// Site interning
// ---------------------------------------------------------------------------

/// Maximum distinct trace sites; excess interns collapse to `<overflow>`.
const MAX_SITES: usize = 64;

struct SiteTable {
    ptrs: [AtomicUsize; MAX_SITES],
    lens: [AtomicUsize; MAX_SITES],
}

static SITES: SiteTable = SiteTable {
    ptrs: [const { AtomicUsize::new(0) }; MAX_SITES],
    lens: [const { AtomicUsize::new(0) }; MAX_SITES],
};

/// Intern a `&'static str` site name, returning a small id.
///
/// Pointer-identity scan-CAS: for string literals the same site resolves
/// without rescanning past its slot. Lock-free; ties are broken by CAS and
/// losers retry the same slot (the winner may be us by value).
pub fn intern(site: &'static str) -> usize {
    let p = site.as_ptr() as usize;
    for i in 0..MAX_SITES {
        let cur = SITES.ptrs[i].load(Ordering::Acquire);
        if cur == p {
            return i;
        }
        if cur == 0 {
            match SITES.ptrs[i].compare_exchange(0, p, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    SITES.lens[i].store(site.len(), Ordering::Release);
                    return i;
                }
                Err(found) => {
                    if found == p {
                        return i;
                    }
                    // Someone else claimed the slot with a different site;
                    // keep scanning.
                }
            }
        } else {
            // Distinct literal with equal contents still gets its own slot
            // only if pointers differ — compare by value as a fallback so
            // cross-crate duplicate names don't burn slots.
            let len = SITES.lens[i].load(Ordering::Acquire);
            if len == site.len() && len != 0 {
                let s = unsafe {
                    core::str::from_utf8_unchecked(core::slice::from_raw_parts(
                        cur as *const u8,
                        len,
                    ))
                };
                if s == site {
                    return i;
                }
            }
        }
    }
    MAX_SITES - 1
}

/// Resolve an interned site id back to its name.
pub fn site_name(id: usize) -> &'static str {
    if id >= MAX_SITES {
        return "<unknown>";
    }
    let p = SITES.ptrs[id].load(Ordering::Acquire);
    let len = SITES.lens[id].load(Ordering::Acquire);
    if p == 0 || len == 0 {
        return "<pending>";
    }
    unsafe { core::str::from_utf8_unchecked(core::slice::from_raw_parts(p as *const u8, len)) }
}

// ---------------------------------------------------------------------------
// Span kinds
// ---------------------------------------------------------------------------

/// How a recorded span renders in the Chrome trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A duration ("X") event: strictly nested on its thread track.
    Sync,
    /// An async ("b"/"e") pair: may overlap and cross threads.
    Async,
    /// A zero-duration instant ("i") marker.
    Instant,
}

impl SpanKind {
    fn code(self) -> u64 {
        match self {
            SpanKind::Sync => 0,
            SpanKind::Async => 1,
            SpanKind::Instant => 2,
        }
    }
    fn from_code(c: u64) -> SpanKind {
        match c {
            1 => SpanKind::Async,
            2 => SpanKind::Instant,
            _ => SpanKind::Sync,
        }
    }
}

// ---------------------------------------------------------------------------
// Per-thread checksummed ring
// ---------------------------------------------------------------------------

/// Golden-ratio constant xor-ed into every slot checksum so an all-zero
/// slot never validates.
const CHECK_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// Records per thread ring. Power of two; at 1-in-N sampling with ~6
/// spans per request this holds thousands of sampled requests.
const RING_CAP: usize = 8192;

struct Slot {
    t0: AtomicU64,
    dur: AtomicU64,
    id: AtomicU64,
    /// `site << 8 | kind`.
    meta: AtomicU64,
    /// xor of the four fields ^ [`CHECK_SEED`], stored last with Release.
    check: AtomicU64,
}

/// A single thread's wait-free span ring.
///
/// One writer (the owning thread), any number of racing readers. Writers
/// store the payload fields relaxed and publish with a Release checksum;
/// readers Acquire the checksum, re-derive it from relaxed field loads,
/// and drop the record on mismatch (torn by wraparound).
pub struct TraceRing {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

impl TraceRing {
    fn new() -> TraceRing {
        let mut v = Vec::with_capacity(RING_CAP);
        for _ in 0..RING_CAP {
            v.push(Slot {
                t0: AtomicU64::new(0),
                dur: AtomicU64::new(0),
                id: AtomicU64::new(0),
                meta: AtomicU64::new(0),
                check: AtomicU64::new(0),
            });
        }
        TraceRing {
            slots: v.into_boxed_slice(),
            head: AtomicU64::new(0),
        }
    }

    /// Append one span record. Wait-free; overwrites the oldest slot on
    /// wraparound.
    pub fn push(&self, t0: u64, dur: u64, id: u64, site: usize, kind: SpanKind) {
        let meta = ((site as u64) << 8) | kind.code();
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h as usize) & (RING_CAP - 1)];
        // Invalidate first so a racing reader can't validate a half-new
        // record against the old checksum.
        slot.check.store(0, Ordering::Release);
        slot.t0.store(t0, Ordering::Relaxed);
        slot.dur.store(dur, Ordering::Relaxed);
        slot.id.store(id, Ordering::Relaxed);
        slot.meta.store(meta, Ordering::Relaxed);
        slot.check
            .store(t0 ^ dur ^ id ^ meta ^ CHECK_SEED, Ordering::Release);
        self.head.store(h.wrapping_add(1), Ordering::Release);
    }

    /// Snapshot every valid record, oldest first. Torn slots are skipped.
    pub fn dump(&self) -> Vec<RawSpan> {
        let h = self.head.load(Ordering::Acquire);
        let n = (h as usize).min(RING_CAP);
        let start = h.wrapping_sub(n as u64);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let slot = &self.slots[((start.wrapping_add(i as u64)) as usize) & (RING_CAP - 1)];
            let check = slot.check.load(Ordering::Acquire);
            if check == 0 {
                continue;
            }
            let t0 = slot.t0.load(Ordering::Relaxed);
            let dur = slot.dur.load(Ordering::Relaxed);
            let id = slot.id.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            if check != t0 ^ dur ^ id ^ meta ^ CHECK_SEED {
                continue; // torn by a racing wraparound write
            }
            out.push(RawSpan {
                t0,
                dur,
                id,
                site: (meta >> 8) as usize,
                kind: SpanKind::from_code(meta & 0xFF),
            });
        }
        out
    }

    /// Invalidate every record (between-run hygiene).
    fn reset(&self) {
        for s in self.slots.iter() {
            s.check.store(0, Ordering::Release);
        }
        self.head.store(0, Ordering::Release);
    }
}

/// One validated record read back out of a [`TraceRing`].
#[derive(Debug, Clone, Copy)]
pub struct RawSpan {
    /// Start timestamp, ns since the trace epoch.
    pub t0: u64,
    /// Duration in ns (0 for instants).
    pub dur: u64,
    /// Request trace id (nonzero).
    pub id: u64,
    /// Interned site id; resolve with [`site_name`].
    pub site: usize,
    /// How the span renders.
    pub kind: SpanKind,
}

struct NamedRing {
    name: String,
    ring: Arc<TraceRing>,
}

fn rings() -> &'static Mutex<Vec<NamedRing>> {
    static RINGS: OnceLock<Mutex<Vec<NamedRing>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_RING: Arc<TraceRing> = {
        let ring = Arc::new(TraceRing::new());
        let name = std::thread::current()
            .name()
            .map(str::to_owned)
            .unwrap_or_else(|| "thread".to_owned());
        let mut v = rings().lock().unwrap();
        let name = format!("{name}#{}", v.len());
        v.push(NamedRing { name, ring: Arc::clone(&ring) });
        ring
    };
    /// The trace id of the request the current thread is working on
    /// (0 = none). Set per poll by [`Traced`], per burst by the server
    /// loop, and scoped by [`scoped`].
    static CURRENT: Cell<u64> = const { Cell::new(0) };
    /// Trace id of the last future polled on this thread, consumed by the
    /// executor to retro-emit `pool.poll` spans.
    static LAST_POLL: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn push_local(t0: u64, dur: u64, id: u64, site: &'static str, kind: SpanKind) {
    LOCAL_RING.with(|r| r.push(t0, dur, id, intern(site), kind));
}

/// Invalidate every registered ring (between-run hygiene in benches).
pub fn reset_rings() {
    for nr in rings().lock().unwrap().iter() {
        nr.ring.reset();
    }
    REQ_SEQ.store(0, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Request context
// ---------------------------------------------------------------------------

/// The trace id of the request the calling thread is currently executing,
/// or 0. One relaxed load when sampling is disabled.
#[inline]
pub fn current() -> u64 {
    if SAMPLE_EVERY.load(Ordering::Relaxed) == 0 {
        return 0;
    }
    CURRENT.with(|c| c.get())
}

/// Set the calling thread's current trace id, returning the previous one.
#[inline]
pub fn set_current(id: u64) -> u64 {
    CURRENT.with(|c| c.replace(id))
}

/// Run `f` with `id` as the thread's current trace id (sync contexts:
/// bench worker threads, tests).
pub fn scoped<T>(id: u64, f: impl FnOnce() -> T) -> T {
    let prev = set_current(id);
    let out = f();
    set_current(prev);
    out
}

/// Consume the trace id of the last future polled on this thread.
///
/// The executor calls this after each poll to decide whether to
/// retro-emit a `pool.poll` span for the interval it just measured.
#[inline]
pub fn take_polled_trace() -> u64 {
    LAST_POLL.with(|c| c.replace(0))
}

fn note_polled(id: u64) {
    LAST_POLL.with(|c| c.set(id));
}

// ---------------------------------------------------------------------------
// Span emission
// ---------------------------------------------------------------------------

/// Retroactively emit a span with explicit endpoints. No-op for id 0.
#[inline]
pub fn span_at(id: u64, site: &'static str, t0: u64, end: u64, kind: SpanKind) {
    if id == 0 {
        return;
    }
    push_local(t0, end.saturating_sub(t0), id, site, kind);
}

/// Emit a zero-duration instant marker. No-op for id 0.
#[inline]
pub fn instant(id: u64, site: &'static str) {
    if id == 0 {
        return;
    }
    push_local(now_ns(), 0, id, site, SpanKind::Instant);
}

/// RAII sync span: records a nested "X" event from construction to drop.
///
/// `!Send` by construction — a sync span must begin and end on one thread
/// (Chrome duration events are per-track and must nest).
pub struct SyncSpan {
    id: u64,
    site: &'static str,
    t0: u64,
    _not_send: PhantomData<*const ()>,
}

impl SyncSpan {
    /// Start a sync span for `id` (no-op span when `id == 0`).
    #[inline]
    pub fn start(id: u64, site: &'static str) -> SyncSpan {
        let t0 = if id == 0 { 0 } else { now_ns() };
        SyncSpan {
            id,
            site,
            t0,
            _not_send: PhantomData,
        }
    }
}

impl Drop for SyncSpan {
    #[inline]
    fn drop(&mut self) {
        if self.id != 0 {
            let end = now_ns();
            push_local(
                self.t0,
                end.saturating_sub(self.t0),
                self.id,
                self.site,
                SpanKind::Sync,
            );
        }
    }
}

/// RAII async span: records a "b"/"e" pair from construction to drop.
///
/// `Send` — the end may land on a different thread than the begin, and
/// dropping a cancelled future still emits the span (the record is written
/// once, at drop).
pub struct AsyncSpan {
    id: u64,
    site: &'static str,
    t0: u64,
}

impl AsyncSpan {
    /// Start an async span for `id` (no-op span when `id == 0`).
    #[inline]
    pub fn start(id: u64, site: &'static str) -> AsyncSpan {
        let t0 = if id == 0 { 0 } else { now_ns() };
        AsyncSpan { id, site, t0 }
    }
}

impl Drop for AsyncSpan {
    #[inline]
    fn drop(&mut self) {
        if self.id != 0 {
            let end = now_ns();
            push_local(
                self.t0,
                end.saturating_sub(self.t0),
                self.id,
                self.site,
                SpanKind::Async,
            );
        }
    }
}

/// Helper for lock-wait spans inside `poll_fn` loops.
///
/// Armed on the first `Pending`, finished on `Ready`; emits one async
/// span covering the whole wait. If the future is dropped mid-wait the
/// caller's surrounding spans still record; the wait itself is abandoned
/// (by design — a cancelled wait has no meaningful end).
#[derive(Default)]
pub struct Waiter {
    armed: Option<(u64, u64)>,
}

impl Waiter {
    /// Create an unarmed waiter.
    pub const fn new() -> Waiter {
        Waiter { armed: None }
    }

    /// Note that the wait has begun (idempotent). No-op for id 0.
    #[inline]
    pub fn arm(&mut self, id: u64) {
        if id != 0 && self.armed.is_none() {
            self.armed = Some((id, now_ns()));
        }
    }

    /// The wait is over: emit the span if armed.
    #[inline]
    pub fn finish(&mut self, site: &'static str) {
        if let Some((id, t0)) = self.armed.take() {
            let end = now_ns();
            push_local(t0, end.saturating_sub(t0), id, site, SpanKind::Async);
        }
    }
}

// ---------------------------------------------------------------------------
// Traced future wrapper
// ---------------------------------------------------------------------------

use core::future::Future;
use core::pin::Pin;
use core::task::{Context, Poll};

/// Wrap a request future so every poll runs with `id` as the thread's
/// current trace id, gaps between polls emit `task.suspend` async spans,
/// and the executor can retro-emit `pool.poll` spans.
pub fn traced<F: Future>(id: u64, fut: F) -> Traced<F> {
    Traced {
        id,
        fut,
        last_pause: 0,
    }
}

/// Future wrapper produced by [`traced`]; see that function.
pub struct Traced<F> {
    id: u64,
    fut: F,
    last_pause: u64,
}

impl<F: Future> Future for Traced<F> {
    type Output = F::Output;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<F::Output> {
        // Manual pin projection: `fut` is structurally pinned, the scalar
        // fields are not.
        let this = unsafe { self.get_unchecked_mut() };
        let fut = unsafe { Pin::new_unchecked(&mut this.fut) };
        if this.id == 0 {
            return fut.poll(cx);
        }
        let t = now_ns();
        if this.last_pause != 0 {
            span_at(this.id, "task.suspend", this.last_pause, t, SpanKind::Async);
            this.last_pause = 0;
        }
        let prev = set_current(this.id);
        let out = fut.poll(cx);
        set_current(prev);
        note_polled(this.id);
        if out.is_pending() {
            this.last_pause = now_ns();
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

/// One event ready for Chrome-trace rendering or integrity checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportEvent {
    /// Span site name (Chrome `name`).
    pub name: String,
    /// Track (thread) name.
    pub track: String,
    /// Track index (Chrome `tid`).
    pub tid: usize,
    /// Start timestamp, ns since the trace epoch.
    pub t0_ns: u64,
    /// Duration in ns.
    pub dur_ns: u64,
    /// Request trace id (Chrome async `id`).
    pub trace_id: u64,
    /// Span kind (selects the Chrome phase).
    pub kind: SpanKind,
}

/// Drain every registered ring into export events (oldest-first per ring).
pub fn export_events() -> Vec<ExportEvent> {
    let mut out = Vec::new();
    for (tid, nr) in rings().lock().unwrap().iter().enumerate() {
        for s in nr.ring.dump() {
            out.push(ExportEvent {
                name: site_name(s.site).to_owned(),
                track: nr.name.clone(),
                tid,
                t0_ns: s.t0,
                dur_ns: s.dur,
                trace_id: s.id,
                kind: s.kind,
            });
        }
    }
    out
}

fn push_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn us(ns: u64) -> String {
    // Chrome trace timestamps are µs; three decimals keep exact ns.
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Render events as a Chrome-trace-event JSON document (one event per
/// line) that `chrome://tracing` and Perfetto open directly.
///
/// Sync spans become "X" duration events, async spans become "b"/"e"
/// pairs matched by `(cat, id, name)`, instants become "i". Each distinct
/// track gets an "M" thread-name metadata record.
pub fn chrome_trace_json(events: &[ExportEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 160 + 64);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push_str(",\n");
        }
    };
    // Thread-name metadata: one per distinct tid.
    let mut seen_tids: Vec<(usize, &str)> = Vec::new();
    for e in events {
        if !seen_tids.iter().any(|(t, _)| *t == e.tid) {
            seen_tids.push((e.tid, &e.track));
        }
    }
    seen_tids.sort_by_key(|(t, _)| *t);
    for (tid, track) in seen_tids {
        sep(&mut out);
        out.push_str("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":");
        let _ = write!(out, "{tid}");
        out.push_str(",\"args\":{\"name\":\"");
        push_json_escaped(&mut out, track);
        out.push_str("\"}}");
    }
    for e in events {
        let mut emit = |ph: &str, ts: u64, dur: Option<u64>| {
            sep(&mut out);
            out.push_str("{\"ph\":\"");
            out.push_str(ph);
            out.push_str("\",\"name\":\"");
            push_json_escaped(&mut out, &e.name);
            out.push_str("\",\"cat\":\"req\",\"pid\":1,\"tid\":");
            let _ = write!(out, "{}", e.tid);
            out.push_str(",\"ts\":");
            out.push_str(&us(ts));
            if let Some(d) = dur {
                out.push_str(",\"dur\":");
                out.push_str(&us(d));
            }
            if ph == "b" || ph == "e" {
                let _ = write!(out, ",\"id\":\"{:x}\"", e.trace_id);
            } else {
                out.push_str(",\"args\":{\"trace\":");
                let _ = write!(out, "{}", e.trace_id);
                out.push('}');
            }
            if ph == "i" {
                out.push_str(",\"s\":\"t\"");
            }
            out.push('}');
        };
        match e.kind {
            SpanKind::Sync => emit("X", e.t0_ns, Some(e.dur_ns)),
            SpanKind::Async => {
                emit("b", e.t0_ns, None);
                emit("e", e.t0_ns + e.dur_ns, None);
            }
            SpanKind::Instant => emit("i", e.t0_ns, None),
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Drain every ring and render the result as Chrome-trace JSON.
pub fn export_chrome_json() -> String {
    let mut events = export_events();
    events.sort_by_key(|e| (e.tid, e.t0_ns, core::cmp::Reverse(e.dur_ns)));
    chrome_trace_json(&events)
}

// ---------------------------------------------------------------------------
// Parse + integrity checking
// ---------------------------------------------------------------------------

/// Extract a JSON string field (`"key":"value"`) from one event line.
fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Extract a numeric JSON field (`"key":123.456`) from one event line.
fn json_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parse a document produced by [`chrome_trace_json`] back into events.
///
/// Line-oriented: understands exactly the subset our emitter writes ("X",
/// "b"/"e" matched per `(trace_id, name)` in order, "i", "M" thread
/// names). Used by the integrity tests and the loadgen decomposition
/// report; not a general Chrome-trace parser.
pub fn parse_chrome_json(doc: &str) -> Vec<ExportEvent> {
    // (trace_id, name) -> stack of pending begins as (tid, ts) pairs.
    type PendingBegins = Vec<((u64, String), Vec<(usize, u64)>)>;
    let mut names: Vec<(usize, String)> = Vec::new();
    let mut out = Vec::new();
    let mut pending: PendingBegins = Vec::new();
    let ns_of = |v: f64| -> u64 { (v * 1000.0).round() as u64 };
    for line in doc.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') {
            continue;
        }
        let Some(ph) = json_str(line, "ph") else {
            continue;
        };
        match ph {
            "M" => {
                if let (Some(tid), Some(name)) = (json_num(line, "tid"), json_str(line, "name")) {
                    if name == "thread_name" {
                        // the args name is the second "name" occurrence
                        if let Some(tail) = line.rfind("\"name\":\"").map(|i| &line[i + 8..]) {
                            if let Some(end) = tail.find('"') {
                                names.push((tid as usize, tail[..end].to_owned()));
                            }
                        }
                    }
                }
            }
            "X" => {
                let (Some(name), Some(tid), Some(ts), Some(dur)) = (
                    json_str(line, "name"),
                    json_num(line, "tid"),
                    json_num(line, "ts"),
                    json_num(line, "dur"),
                ) else {
                    continue;
                };
                let trace = json_num(line, "trace").unwrap_or(0.0) as u64;
                out.push(ExportEvent {
                    name: name.to_owned(),
                    track: String::new(),
                    tid: tid as usize,
                    t0_ns: ns_of(ts),
                    dur_ns: ns_of(dur),
                    trace_id: trace,
                    kind: SpanKind::Sync,
                });
            }
            "i" => {
                let (Some(name), Some(tid), Some(ts)) = (
                    json_str(line, "name"),
                    json_num(line, "tid"),
                    json_num(line, "ts"),
                ) else {
                    continue;
                };
                let trace = json_num(line, "trace").unwrap_or(0.0) as u64;
                out.push(ExportEvent {
                    name: name.to_owned(),
                    track: String::new(),
                    tid: tid as usize,
                    t0_ns: ns_of(ts),
                    dur_ns: 0,
                    trace_id: trace,
                    kind: SpanKind::Instant,
                });
            }
            "b" | "e" => {
                let (Some(name), Some(tid), Some(ts), Some(id)) = (
                    json_str(line, "name"),
                    json_num(line, "tid"),
                    json_num(line, "ts"),
                    json_str(line, "id"),
                ) else {
                    continue;
                };
                let trace = u64::from_str_radix(id, 16).unwrap_or(0);
                let key = (trace, name.to_owned());
                let entry = match pending.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, v)) => v,
                    None => {
                        pending.push((key, Vec::new()));
                        &mut pending.last_mut().unwrap().1
                    }
                };
                if ph == "b" {
                    entry.push((tid as usize, ns_of(ts)));
                } else if let Some((btid, bts)) = entry.pop() {
                    out.push(ExportEvent {
                        name: name.to_owned(),
                        track: String::new(),
                        tid: btid,
                        t0_ns: bts,
                        dur_ns: ns_of(ts).saturating_sub(bts),
                        trace_id: trace,
                        kind: SpanKind::Async,
                    });
                }
            }
            _ => {}
        }
    }
    for e in &mut out {
        if let Some((_, n)) = names.iter().find(|(t, _)| *t == e.tid) {
            e.track.clone_from(n);
        }
    }
    out
}

/// Check trace well-formedness; returns the list of violations (empty =
/// well-formed).
///
/// Invariants checked:
/// * sync ("X") events on one tid strictly nest — no partial overlap;
/// * every span's duration is non-negative by construction (`u64`), and
///   `t0 + dur` does not overflow;
/// * async spans with the same `(trace_id, name)` have begin <= end
///   (guaranteed by the single-record emitter, re-checked after a JSON
///   round trip).
pub fn check_well_formed(events: &[ExportEvent]) -> Vec<String> {
    let mut errs = Vec::new();
    // Per-tid sync nesting sweep.
    let mut tids: Vec<usize> = events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let mut sync: Vec<&ExportEvent> = events
            .iter()
            .filter(|e| e.tid == tid && e.kind == SpanKind::Sync)
            .collect();
        sync.sort_by_key(|e| (e.t0_ns, core::cmp::Reverse(e.dur_ns)));
        let mut stack: Vec<(u64, &str)> = Vec::new(); // (end, name)
        for e in sync {
            let end = match e.t0_ns.checked_add(e.dur_ns) {
                Some(v) => v,
                None => {
                    errs.push(format!("{}: t0+dur overflows", e.name));
                    continue;
                }
            };
            while let Some(&(top_end, _)) = stack.last() {
                if top_end <= e.t0_ns {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(top_end, top_name)) = stack.last() {
                if end > top_end {
                    errs.push(format!(
                        "tid {tid}: sync span {} [{}, {}) partially overlaps {} (ends {})",
                        e.name, e.t0_ns, end, top_name, top_end
                    ));
                    continue;
                }
            }
            stack.push((end, &e.name));
        }
    }
    // Async pairing sanity: after a parse round-trip unmatched begins stay
    // in the parser's pending set and never become events, so here we only
    // re-check computed durations; direct exports can't violate this.
    for e in events {
        if e.t0_ns.checked_add(e.dur_ns).is_none() {
            errs.push(format!("{}: t0+dur overflows", e.name));
        }
    }
    errs
}

/// Render flight-recorder records as instant events on one synthetic
/// track, so an existing [`crate::recorder::Recorder`] dump opens in the same
/// Perfetto view as a request trace.
///
/// Recorder ticks are logical (monotone counter), not ns; they are used
/// directly as timestamps so relative order is preserved.
pub fn recorder_to_chrome(events: &[crate::recorder::RecordedEvent]) -> String {
    let rendered: Vec<ExportEvent> = events
        .iter()
        .map(|e| ExportEvent {
            name: format!("{}:{:?}", e.site, e.event),
            track: "flight-recorder".to_owned(),
            tid: 0,
            t0_ns: e.tick_ns,
            dur_ns: 0,
            trace_id: e.arg,
            kind: SpanKind::Instant,
        })
        .collect();
    chrome_trace_json(&rendered)
}

// ---------------------------------------------------------------------------
// RTT decomposition
// ---------------------------------------------------------------------------

/// One sampled request's round-trip time split into the pipeline stages a
/// request passes through, computed from exported span events by
/// [`decompose_requests`]. All figures are nanoseconds.
///
/// The components are designed to (approximately) sum to `total_ns`:
/// `queue_ns` is the scheduler/suspension share left over after the
/// lock-wait and flush suspensions — which have their own spans — are
/// subtracted from the task's total suspended time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RttDecomp {
    /// The request's trace id.
    pub trace_id: u64,
    /// Decode plus the full dispatch-to-flushed interval
    /// (`net.decode` + `net.request`).
    pub total_ns: u64,
    /// Wire decode share (`net.decode`).
    pub decode_ns: u64,
    /// Executor queueing share: total task suspension (`task.suspend`)
    /// minus the suspensions already attributed to lock waits and flush.
    pub queue_ns: u64,
    /// Shard/central lock acquisition waits (`shard.lock_wait`).
    pub lock_wait_ns: u64,
    /// Time under a lock: guard hold time (`shard.lock_hold`), or — for a
    /// request whose ops were flat-combined by another task's combiner,
    /// so it never held the lock itself — the combiner's serve time for
    /// this request (`shard.combine_serve`).
    pub hold_ns: u64,
    /// Response encode + socket flush share (`net.encode` + `net.flush`).
    pub flush_ns: u64,
}

impl RttDecomp {
    /// Nanoseconds of `total_ns` not claimed by any component — parse
    /// overhead, executor poll bookkeeping, non-lock CPU work.
    pub fn unattributed_ns(&self) -> u64 {
        self.total_ns.saturating_sub(
            self.decode_ns + self.queue_ns + self.lock_wait_ns + self.hold_ns + self.flush_ns,
        )
    }
}

/// Groups exported span events by trace id and computes one [`RttDecomp`]
/// per request that has a `net.request` span (partial requests still in
/// flight, and spans from ids whose `net.request` record was overwritten
/// by ring wraparound, are dropped). Output is sorted by trace id.
pub fn decompose_requests(events: &[ExportEvent]) -> Vec<RttDecomp> {
    #[derive(Default)]
    struct Acc {
        request: u64,
        decode: u64,
        suspend: u64,
        lock_wait: u64,
        hold: u64,
        serve: u64,
        flush: u64,
    }
    let mut by_id: std::collections::BTreeMap<u64, Acc> = std::collections::BTreeMap::new();
    for e in events {
        if e.trace_id == 0 {
            continue;
        }
        let a = by_id.entry(e.trace_id).or_default();
        match e.name.as_str() {
            "net.request" => a.request += e.dur_ns,
            "net.decode" => a.decode += e.dur_ns,
            "net.encode" | "net.flush" => a.flush += e.dur_ns,
            "task.suspend" => a.suspend += e.dur_ns,
            "shard.lock_wait" => a.lock_wait += e.dur_ns,
            "shard.lock_hold" => a.hold += e.dur_ns,
            "shard.combine_serve" => a.serve += e.dur_ns,
            _ => {}
        }
    }
    by_id
        .into_iter()
        .filter(|(_, a)| a.request > 0)
        .map(|(id, a)| {
            // A combiner's serve time for its own ops nests inside its
            // lock hold; only a pure poster (no hold of its own) counts
            // the combiner's serve span as its lock-time share.
            let hold = if a.hold > 0 { a.hold } else { a.serve };
            RttDecomp {
                trace_id: id,
                total_ns: a.decode + a.request,
                decode_ns: a.decode,
                queue_ns: a.suspend.saturating_sub(a.lock_wait + a.flush),
                lock_wait_ns: a.lock_wait,
                hold_ns: hold,
                flush_ns: a.flush,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Sampling state is process-global; every test that needs it on must
    // restore it, and only this module's tests may touch it (the harness
    // runs tests concurrently in one process).
    struct SamplingGuard;
    impl Drop for SamplingGuard {
        fn drop(&mut self) {
            set_sampling(0, 0);
        }
    }

    #[test]
    fn disabled_by_default_and_cheap() {
        assert!(!active());
        assert_eq!(sample_request(), 0);
        assert_eq!(current(), 0);
    }

    #[test]
    fn interning_is_stable_and_resolves() {
        let a = intern("test.site.a");
        let b = intern("test.site.b");
        assert_ne!(a, b);
        assert_eq!(intern("test.site.a"), a);
        assert_eq!(site_name(a), "test.site.a");
        assert_eq!(site_name(b), "test.site.b");
        assert_eq!(site_name(MAX_SITES + 7), "<unknown>");
    }

    #[test]
    fn ring_roundtrip_and_wraparound() {
        let ring = TraceRing::new();
        let site = intern("test.ring");
        for i in 0..(RING_CAP as u64 + 10) {
            ring.push(i, 1, i + 1, site, SpanKind::Sync);
        }
        let spans = ring.dump();
        assert_eq!(spans.len(), RING_CAP);
        // Oldest surviving record is the 11th push.
        assert_eq!(spans[0].t0, 10);
        assert_eq!(spans.last().unwrap().t0, RING_CAP as u64 + 9);
        for w in spans.windows(2) {
            assert!(w[0].t0 < w[1].t0);
        }
    }

    #[test]
    fn kind_codes_roundtrip() {
        for k in [SpanKind::Sync, SpanKind::Async, SpanKind::Instant] {
            assert_eq!(SpanKind::from_code(k.code()), k);
        }
    }

    #[test]
    fn chrome_json_roundtrips_through_parser() {
        let events = vec![
            ExportEvent {
                name: "net.request".into(),
                track: "conn#0".into(),
                tid: 0,
                t0_ns: 1_000,
                dur_ns: 9_500,
                trace_id: 42,
                kind: SpanKind::Async,
            },
            ExportEvent {
                name: "net.decode".into(),
                track: "conn#0".into(),
                tid: 0,
                t0_ns: 1_100,
                dur_ns: 300,
                trace_id: 42,
                kind: SpanKind::Sync,
            },
            ExportEvent {
                name: "shard.lock_wait".into(),
                track: "pool#1".into(),
                tid: 1,
                t0_ns: 2_000,
                dur_ns: 4_001,
                trace_id: 42,
                kind: SpanKind::Async,
            },
            ExportEvent {
                name: "mark".into(),
                track: "pool#1".into(),
                tid: 1,
                t0_ns: 3_000,
                dur_ns: 0,
                trace_id: 42,
                kind: SpanKind::Instant,
            },
        ];
        let doc = chrome_trace_json(&events);
        let parsed = parse_chrome_json(&doc);
        assert_eq!(parsed.len(), events.len());
        for e in &events {
            let p = parsed
                .iter()
                .find(|p| p.name == e.name && p.kind == e.kind)
                .unwrap_or_else(|| panic!("missing {}", e.name));
            assert_eq!(p.t0_ns, e.t0_ns, "{}", e.name);
            assert_eq!(p.dur_ns, e.dur_ns, "{}", e.name);
            assert_eq!(p.trace_id, e.trace_id, "{}", e.name);
            assert_eq!(p.tid, e.tid, "{}", e.name);
        }
        assert!(check_well_formed(&parsed).is_empty());
        // Track names recovered from the M records.
        assert!(parsed.iter().any(|p| p.track == "conn#0"));
    }

    #[test]
    fn well_formedness_flags_partial_overlap() {
        let bad = vec![
            ExportEvent {
                name: "a".into(),
                track: String::new(),
                tid: 0,
                t0_ns: 0,
                dur_ns: 100,
                trace_id: 1,
                kind: SpanKind::Sync,
            },
            ExportEvent {
                name: "b".into(),
                track: String::new(),
                tid: 0,
                t0_ns: 50,
                dur_ns: 100,
                trace_id: 1,
                kind: SpanKind::Sync,
            },
        ];
        let errs = check_well_formed(&bad);
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].contains("partially overlaps"));
    }

    #[test]
    fn sampling_selects_one_in_n_deterministically() {
        let _guard = SamplingGuard;
        set_sampling(4, 7);
        REQ_SEQ.store(0, Ordering::Relaxed);
        let picks: Vec<u64> = (0..16).map(|_| sample_request()).collect();
        let sampled: Vec<u64> = picks.iter().copied().filter(|&p| p != 0).collect();
        assert_eq!(sampled.len(), 4, "{picks:?}");
        // (seq + 7) % 4 == 0 → seq ∈ {1, 5, 9, 13} → ids seq+1.
        assert_eq!(sampled, vec![2, 6, 10, 14]);
        // Same seed, same subset.
        REQ_SEQ.store(0, Ordering::Relaxed);
        let again: Vec<u64> = (0..16).map(|_| sample_request()).collect();
        assert_eq!(picks, again);
    }

    #[test]
    fn spans_record_into_the_thread_ring() {
        let _guard = SamplingGuard;
        set_sampling(1, 0);
        reset_rings();
        {
            let _outer = SyncSpan::start(99, "test.outer");
            let _inner = SyncSpan::start(99, "test.inner");
        }
        {
            let _a = AsyncSpan::start(99, "test.async");
        }
        instant(99, "test.instant");
        let mut w = Waiter::new();
        w.arm(99);
        w.arm(99); // idempotent
        w.finish("test.wait");
        let events = export_events();
        let mine: Vec<&ExportEvent> = events.iter().filter(|e| e.trace_id == 99).collect();
        let names: Vec<&str> = mine.iter().map(|e| e.name.as_str()).collect();
        for want in [
            "test.outer",
            "test.inner",
            "test.async",
            "test.instant",
            "test.wait",
        ] {
            assert!(names.contains(&want), "missing {want} in {names:?}");
        }
        assert_eq!(names.iter().filter(|n| **n == "test.wait").count(), 1);
        assert!(check_well_formed(&events).is_empty());
        // The whole export renders and reparses.
        let doc = chrome_trace_json(&events);
        let parsed = parse_chrome_json(&doc);
        assert_eq!(parsed.len(), events.len());
        reset_rings();
    }

    #[test]
    fn scoped_restores_previous_id() {
        let _guard = SamplingGuard;
        set_sampling(1, 0);
        assert_eq!(current(), 0);
        scoped(5, || {
            assert_eq!(current(), 5);
            scoped(6, || assert_eq!(current(), 6));
            assert_eq!(current(), 5);
        });
        assert_eq!(current(), 0);
    }

    #[test]
    fn traced_future_sets_context_and_emits_suspend() {
        use core::future::poll_fn;
        let _guard = SamplingGuard;
        set_sampling(1, 0);
        reset_rings();
        let mut polls = 0;
        let fut = traced(
            77,
            poll_fn(move |cx| {
                assert_eq!(current(), 77);
                polls += 1;
                if polls < 3 {
                    cx.waker().wake_by_ref();
                    Poll::Pending
                } else {
                    Poll::Ready(())
                }
            }),
        );
        block_on_inline(fut);
        assert_eq!(take_polled_trace(), 77);
        assert_eq!(take_polled_trace(), 0);
        let suspends = export_events()
            .into_iter()
            .filter(|e| e.name == "task.suspend" && e.trace_id == 77)
            .count();
        assert_eq!(suspends, 2);
        reset_rings();
    }

    #[test]
    fn dropped_async_span_still_records() {
        let _guard = SamplingGuard;
        set_sampling(1, 0);
        reset_rings();
        let fut = traced(88, async {
            let _hold = AsyncSpan::start(current(), "test.cancelled_hold");
            core::future::pending::<()>().await;
        });
        // Poll once, then drop: the span must still be emitted.
        let mut fut = Box::pin(fut);
        let waker = noop_waker();
        let mut cx = Context::from_waker(&waker);
        assert!(fut.as_mut().poll(&mut cx).is_pending());
        drop(fut);
        let found = export_events()
            .into_iter()
            .any(|e| e.name == "test.cancelled_hold" && e.trace_id == 88);
        assert!(found);
        reset_rings();
    }

    fn noop_waker() -> core::task::Waker {
        use core::task::{RawWaker, RawWakerVTable, Waker};
        fn clone(_: *const ()) -> RawWaker {
            RawWaker::new(core::ptr::null(), &VTABLE)
        }
        fn nop(_: *const ()) {}
        static VTABLE: RawWakerVTable = RawWakerVTable::new(clone, nop, nop, nop);
        unsafe { Waker::from_raw(RawWaker::new(core::ptr::null(), &VTABLE)) }
    }

    /// Minimal inline block_on for tests (obs cannot depend on harness).
    fn block_on_inline<F: Future>(fut: F) -> F::Output {
        let mut fut = Box::pin(fut);
        let waker = noop_waker();
        let mut cx = Context::from_waker(&waker);
        loop {
            if let Poll::Ready(v) = fut.as_mut().poll(&mut cx) {
                return v;
            }
            std::thread::yield_now();
        }
    }

    #[test]
    fn decomposition_attributes_components_and_balances() {
        let ev = |name: &str, id: u64, t0: u64, dur: u64, kind: SpanKind| ExportEvent {
            name: name.to_owned(),
            track: "t".to_owned(),
            tid: 0,
            t0_ns: t0,
            dur_ns: dur,
            trace_id: id,
            kind,
        };
        let events = vec![
            // Request 5: a combiner — holds the lock, serves its own ops.
            ev("net.decode", 5, 0, 100, SpanKind::Sync),
            ev("net.request", 5, 100, 1000, SpanKind::Async),
            ev("task.suspend", 5, 150, 400, SpanKind::Async),
            ev("shard.lock_wait", 5, 150, 250, SpanKind::Async),
            ev("shard.lock_hold", 5, 400, 200, SpanKind::Async),
            ev("shard.combine_serve", 5, 410, 150, SpanKind::Sync),
            ev("net.encode", 5, 700, 50, SpanKind::Sync),
            ev("net.flush", 5, 750, 100, SpanKind::Async),
            // Request 9: a pure poster — another task's combiner served it.
            ev("net.request", 9, 2000, 500, SpanKind::Async),
            ev("task.suspend", 9, 2050, 300, SpanKind::Async),
            ev("shard.combine_serve", 9, 2100, 120, SpanKind::Sync),
            // Orphan spans: no net.request, must be dropped.
            ev("shard.lock_hold", 11, 3000, 40, SpanKind::Async),
            // Untraced spans are ignored entirely.
            ev("net.decode", 0, 0, 9999, SpanKind::Sync),
        ];
        let ds = decompose_requests(&events);
        assert_eq!(ds.len(), 2);

        let d5 = ds[0];
        assert_eq!(d5.trace_id, 5);
        assert_eq!(d5.total_ns, 1100);
        assert_eq!(d5.decode_ns, 100);
        assert_eq!(d5.lock_wait_ns, 250);
        // Combiner: hold wins; its own serve span nests inside the hold.
        assert_eq!(d5.hold_ns, 200);
        assert_eq!(d5.flush_ns, 150);
        // queue = suspend - (lock_wait + flush) = 400 - 400 = 0.
        assert_eq!(d5.queue_ns, 0);
        assert_eq!(d5.unattributed_ns(), 1100 - (100 + 250 + 200 + 150));

        let d9 = ds[1];
        assert_eq!(d9.trace_id, 9);
        // Poster: the combiner's serve time stands in for hold.
        assert_eq!(d9.hold_ns, 120);
        assert_eq!(d9.queue_ns, 300);
        assert_eq!(d9.total_ns, 500);
    }
}
