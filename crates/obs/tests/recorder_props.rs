//! Property tests for the flight-recorder ring: wraparound arithmetic
//! over arbitrary capacity/write-count combinations, and torn-record
//! freedom under concurrent writers (the checksum either validates a
//! whole record or drops it — never a splice of two).

use hemlock_core::events::LockEvent;
use hemlock_obs::recorder::Recorder;
use proptest::prelude::*;

proptest! {
    /// For any capacity and write count, the dump holds exactly the last
    /// `min(written, capacity)` records, oldest first — the wraparound
    /// index arithmetic has no off-by-one at any boundary.
    #[test]
    fn wraparound_keeps_exactly_the_newest(
        capacity in 1usize..70,
        writes in 0u64..300,
    ) {
        let r = Recorder::new(capacity);
        for i in 0..writes {
            r.record("prop-site", LockEvent::Acquire, i);
        }
        prop_assert_eq!(r.written(), writes);
        let d = r.dump();
        let kept = (writes as usize).min(r.capacity());
        prop_assert_eq!(d.len(), kept);
        let expect: Vec<u64> = (writes - kept as u64..writes).collect();
        let got: Vec<u64> = d.iter().map(|e| e.arg).collect();
        prop_assert_eq!(got, expect);
        prop_assert!(d.windows(2).all(|w| w[0].tick_ns <= w[1].tick_ns));
    }

    /// Concurrent writers racing a concurrent dumper: every record the
    /// dump returns decodes to something some thread actually wrote
    /// (site/event/arg all consistent — the checksum rejects splices),
    /// and a quiesced dump is full once the ring has wrapped.
    #[test]
    fn concurrent_writers_dump_is_never_torn(
        threads in 2usize..5,
        per in 100u64..800,
    ) {
        let r = Recorder::new(32);
        // Thread t writes args tagged t in the high bits, so a torn
        // ts/data splice would surface as an impossible (event, arg) pair.
        std::thread::scope(|s| {
            for t in 0..threads {
                let r = &r;
                s.spawn(move || {
                    for i in 0..per {
                        let arg = ((t as u64) << 32) | i;
                        r.record("prop-writer", LockEvent::Release, arg);
                    }
                });
            }
            // Dump while the writers are live: only checksummed records.
            for e in r.dump() {
                prop_assert_eq!(e.event, LockEvent::Release);
                prop_assert_eq!(e.site, "prop-writer");
                let (t, i) = (e.arg >> 32, e.arg & 0xFFFF_FFFF);
                prop_assert!(t < threads as u64);
                prop_assert!(i < per);
            }
        });
        prop_assert_eq!(r.written(), threads as u64 * per);
        // Quiesced: the ring is full and every record validates.
        let d = r.dump();
        prop_assert_eq!(d.len(), r.capacity());
        for e in d {
            prop_assert_eq!(e.event, LockEvent::Release);
            prop_assert!((e.arg >> 32) < threads as u64);
        }
    }
}
