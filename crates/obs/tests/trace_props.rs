//! Property tests for the request-tracing layer: exported traces must
//! stay structurally well-formed — sync spans properly nested per
//! thread, async begin/end pairs balanced, timestamps sane — under
//! arbitrary concurrent request interleavings and under futures that
//! are cancelled (dropped) mid-flight, and the Chrome-trace JSON
//! document must round-trip through its own parser without loss.

use hemlock_obs::trace;
use proptest::prelude::*;
use std::future::Future;
use std::pin::Pin;
use std::sync::Mutex;
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};

/// Sampling and the ring registry are process-global; the tests in this
/// binary serialize on this lock and reset both around each case.
static GLOBAL: Mutex<()> = Mutex::new(());

fn noop_waker() -> Waker {
    fn clone(_: *const ()) -> RawWaker {
        RawWaker::new(core::ptr::null(), &VTABLE)
    }
    fn nop(_: *const ()) {}
    static VTABLE: RawWakerVTable = RawWakerVTable::new(clone, nop, nop, nop);
    unsafe { Waker::from_raw(RawWaker::new(core::ptr::null(), &VTABLE)) }
}

/// Nested sync spans, one per depth level, innermost closed first.
fn nest(id: u64, depth: usize) {
    const NAMES: [&str; 4] = ["prop.d0", "prop.d1", "prop.d2", "prop.d3"];
    if depth == 0 {
        std::hint::black_box(id);
        return;
    }
    let span = trace::SyncSpan::start(id, NAMES[depth % NAMES.len()]);
    nest(id, depth - 1);
    drop(span);
}

/// Yields `Pending` exactly once, then `Ready` — every await point
/// suspends the traced future once.
struct YieldOnce(bool);
impl Future for YieldOnce {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        if self.0 {
            Poll::Ready(())
        } else {
            self.0 = true;
            Poll::Pending
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any interleaving of sampled requests across threads — nested sync
    /// spans, async wait spans, instants — exports to a Chrome-trace
    /// document that parses back loss-free and passes every structural
    /// check (per-thread sync nesting, balanced async pairs, no
    /// timestamp overflow).
    #[test]
    fn concurrent_requests_export_well_formed(
        threads in 1usize..4,
        requests_per in 1usize..10,
        depth in 1usize..4,
    ) {
        let _g = GLOBAL.lock().unwrap();
        trace::set_sampling(1, 0);
        trace::reset_rings();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(move || {
                    for _ in 0..requests_per {
                        let id = trace::sample_request();
                        trace::scoped(id, || {
                            let req = trace::AsyncSpan::start(id, "prop.request");
                            trace::instant(id, "prop.mark");
                            nest(id, depth);
                            let wait = trace::AsyncSpan::start(id, "prop.wait");
                            drop(wait);
                            drop(req);
                        });
                    }
                });
            }
        });
        let exported = trace::export_events();
        let doc = trace::export_chrome_json();
        let parsed = trace::parse_chrome_json(&doc);
        let errs = trace::check_well_formed(&parsed);
        prop_assert!(errs.is_empty(), "integrity errors: {errs:?}");
        // Loss-free round-trip: every ring record survives the JSON.
        prop_assert_eq!(parsed.len(), exported.len());
        // Every request recorded its root span exactly once.
        let roots = parsed.iter().filter(|e| e.name == "prop.request").count();
        prop_assert_eq!(roots, threads * requests_per);
        trace::set_sampling(0, 0);
    }

    /// A traced request future cancelled (dropped) between polls still
    /// leaves a balanced, well-formed trace: the open async spans record
    /// at drop time rather than dangling.
    #[test]
    fn cancelled_futures_still_emit_balanced_spans(
        requests in 1usize..8,
        polls in 1usize..5,
    ) {
        let _g = GLOBAL.lock().unwrap();
        trace::set_sampling(1, 0);
        trace::reset_rings();
        let waker = noop_waker();
        let mut cx = Context::from_waker(&waker);
        for _ in 0..requests {
            let id = trace::sample_request();
            prop_assert!(id != 0);
            let mut fut = Box::pin(trace::traced(id, async {
                let _op = trace::AsyncSpan::start(trace::current(), "prop.op");
                loop {
                    // Suspend every iteration; the request never
                    // completes on its own.
                    YieldOnce(false).await;
                    let inner = trace::SyncSpan::start(trace::current(), "prop.step");
                    drop(inner);
                }
            }));
            for _ in 0..polls {
                prop_assert!(fut.as_mut().poll(&mut cx).is_pending());
            }
            drop(fut); // cancellation: Drop must close `prop.op`
        }
        let doc = trace::export_chrome_json();
        let parsed = trace::parse_chrome_json(&doc);
        let errs = trace::check_well_formed(&parsed);
        prop_assert!(errs.is_empty(), "integrity errors: {errs:?}");
        // Every cancelled request closed its op span exactly once.
        let ops = parsed.iter().filter(|e| e.name == "prop.op").count();
        prop_assert_eq!(ops, requests);
        // All spans carry the ids the sampler handed out.
        for e in &parsed {
            prop_assert!(e.trace_id >= 1 && e.trace_id <= requests as u64);
        }
        trace::set_sampling(0, 0);
    }
}
