//! The minikv wire protocol: length-prefixed binary frames.
//!
//! Every message — request or response — is one **frame**:
//!
//! ```text
//! +----------------+---------------------------------------------+
//! | len: u32 BE    | body (exactly `len` bytes)                  |
//! +----------------+---------------------------------------------+
//! ```
//!
//! `len` counts the body only (not itself) and is capped at
//! [`MAX_FRAME`]; a peer declaring more is a protocol error the decoder
//! reports **before allocating anything**, so a hostile 4-byte header
//! cannot balloon memory. Bodies share a common prefix — a `u64` BE
//! **request id** the client picks and the server echoes — which is what
//! makes pipelining work: a client may write many requests back-to-back
//! and match responses by id, and a server may (in principle) complete
//! them out of order.
//!
//! Request bodies, after the id:
//!
//! ```text
//! GET    = 0x01  klen:u32 key
//! PUT    = 0x02  klen:u32 key vlen:u32 value
//! DELETE = 0x03  klen:u32 key
//! PING   = 0x04  (empty)
//! STATS  = 0x05  (empty)
//! TRACE  = 0x06  (empty)
//! RECORDER = 0x07  (empty)
//! ```
//!
//! Response bodies, after the echoed id:
//!
//! ```text
//! VALUE     = 0x80  vlen:u32 value          (GET hit)
//! NOT_FOUND = 0x81                          (GET miss)
//! OK        = 0x82                          (PUT / DELETE done)
//! PONG      = 0x83                          (PING)
//! ERR       = 0x84  mlen:u32 message        (server-side failure)
//! STATS     = 0x85  tlen:u32 text           (metrics snapshot, UTF-8
//!                                            "key value" lines)
//! TRACE     = 0x86  tlen:u32 json           (Chrome-trace JSON export)
//! RECORDER  = 0x87  tlen:u32 text           (flight-recorder dump)
//! ```
//!
//! [`Decoder`] is incremental: [`Decoder::feed`] it whatever a socket
//! read produced — half a header, three frames and a tail, anything —
//! and pull complete messages out with [`Decoder::next_request`] /
//! [`Decoder::next_response`]. Partial input is `Ok(None)`, never an
//! error; malformed input is an error, never a panic.

use std::fmt;

/// Largest permitted frame body in bytes (1 MiB). Keys and values are
/// bounded by this minus their fixed headers.
pub const MAX_FRAME: usize = 1 << 20;

/// Byte size of the length prefix.
const LEN_PREFIX: usize = 4;

/// Byte size of the request-id field every body starts with.
const ID_SIZE: usize = 8;

/// A decoded client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Point lookup.
    Get {
        /// Client-chosen id, echoed in the response.
        id: u64,
        /// Key to look up.
        key: Vec<u8>,
    },
    /// Insert or overwrite.
    Put {
        /// Client-chosen id, echoed in the response.
        id: u64,
        /// Key to write.
        key: Vec<u8>,
        /// Value to associate.
        value: Vec<u8>,
    },
    /// Remove a key.
    Delete {
        /// Client-chosen id, echoed in the response.
        id: u64,
        /// Key to remove.
        key: Vec<u8>,
    },
    /// Liveness probe; the server answers [`Response::Pong`].
    Ping {
        /// Client-chosen id, echoed in the response.
        id: u64,
    },
    /// Metrics snapshot request; the server answers [`Response::Stats`]
    /// with the observability registry rendered as text.
    Stats {
        /// Client-chosen id, echoed in the response.
        id: u64,
    },
    /// Trace export request; the server answers [`Response::Trace`] with
    /// its sampled request spans rendered as Chrome-trace JSON.
    Trace {
        /// Client-chosen id, echoed in the response.
        id: u64,
    },
    /// Flight-recorder dump request; the server answers
    /// [`Response::RecorderDump`] with the recorder rendered as text —
    /// the debugger-free path to the lock-event ring.
    Recorder {
        /// Client-chosen id, echoed in the response.
        id: u64,
    },
}

impl Request {
    /// The request id (echoed by the server's response).
    pub fn id(&self) -> u64 {
        match *self {
            Request::Get { id, .. }
            | Request::Put { id, .. }
            | Request::Delete { id, .. }
            | Request::Ping { id }
            | Request::Stats { id }
            | Request::Trace { id }
            | Request::Recorder { id } => id,
        }
    }
}

/// A decoded server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// GET hit.
    Value {
        /// Echo of the request id.
        id: u64,
        /// The stored value.
        value: Vec<u8>,
    },
    /// GET miss.
    NotFound {
        /// Echo of the request id.
        id: u64,
    },
    /// PUT or DELETE completed.
    Ok {
        /// Echo of the request id.
        id: u64,
    },
    /// Answer to [`Request::Ping`].
    Pong {
        /// Echo of the request id.
        id: u64,
    },
    /// Server-side failure executing the request.
    Err {
        /// Echo of the request id.
        id: u64,
        /// Human-readable failure description.
        message: String,
    },
    /// Answer to [`Request::Stats`]: the server's metrics snapshot,
    /// line-oriented `"key value"` text (see `hemlock_obs::Snapshot`).
    Stats {
        /// Echo of the request id.
        id: u64,
        /// Rendered snapshot text.
        text: String,
    },
    /// Answer to [`Request::Trace`]: the server's sampled spans as
    /// Chrome-trace JSON (see `hemlock_obs::trace`).
    Trace {
        /// Echo of the request id.
        id: u64,
        /// Chrome-trace-event JSON document.
        json: String,
    },
    /// Answer to [`Request::Recorder`]: the flight recorder rendered as
    /// text, newest-last, with site names resolved.
    RecorderDump {
        /// Echo of the request id.
        id: u64,
        /// Rendered recorder dump.
        text: String,
    },
}

impl Response {
    /// The echoed request id.
    pub fn id(&self) -> u64 {
        match *self {
            Response::Value { id, .. }
            | Response::NotFound { id }
            | Response::Ok { id }
            | Response::Pong { id }
            | Response::Err { id, .. }
            | Response::Stats { id, .. }
            | Response::Trace { id, .. }
            | Response::RecorderDump { id, .. } => id,
        }
    }
}

/// Opcode bytes for requests.
mod op {
    pub const GET: u8 = 0x01;
    pub const PUT: u8 = 0x02;
    pub const DELETE: u8 = 0x03;
    pub const PING: u8 = 0x04;
    pub const STATS: u8 = 0x05;
    pub const TRACE: u8 = 0x06;
    pub const RECORDER: u8 = 0x07;
}

/// Status bytes for responses.
mod status {
    pub const VALUE: u8 = 0x80;
    pub const NOT_FOUND: u8 = 0x81;
    pub const OK: u8 = 0x82;
    pub const PONG: u8 = 0x83;
    pub const ERR: u8 = 0x84;
    pub const STATS: u8 = 0x85;
    pub const TRACE: u8 = 0x86;
    pub const RECORDER: u8 = 0x87;
}

/// A protocol violation (encode- or decode-side).
///
/// Every variant is a reason to drop the connection: the stream framing
/// is byte-exact, so after one bad frame there is no resynchronization
/// point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// A length prefix (or an encode request) exceeded [`MAX_FRAME`].
    Oversized {
        /// The length the peer declared (or the encoder was asked for).
        declared: u64,
        /// The enforced cap ([`MAX_FRAME`]).
        max: usize,
    },
    /// A request carried an opcode outside the defined set.
    BadOpcode(u8),
    /// A response carried a status outside the defined set.
    BadStatus(u8),
    /// A frame's internal fields did not tile its declared length.
    Malformed(&'static str),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FrameError::Oversized { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds the {max}-byte cap")
            }
            FrameError::BadOpcode(b) => write!(f, "unknown request opcode {b:#04x}"),
            FrameError::BadStatus(b) => write!(f, "unknown response status {b:#04x}"),
            FrameError::Malformed(why) => write!(f, "malformed frame: {why}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Appends one encoded frame for `req` to `out`.
///
/// Fails (writing nothing) if the frame would exceed [`MAX_FRAME`] — the
/// encoder enforces the same cap the decoder does, so a well-behaved
/// peer can never produce a frame its counterpart must reject.
pub fn encode_request(req: &Request, out: &mut Vec<u8>) -> Result<(), FrameError> {
    let body_len = match req {
        Request::Get { key, .. } | Request::Delete { key, .. } => ID_SIZE + 1 + 4 + key.len(),
        Request::Put { key, value, .. } => ID_SIZE + 1 + 4 + key.len() + 4 + value.len(),
        Request::Ping { .. }
        | Request::Stats { .. }
        | Request::Trace { .. }
        | Request::Recorder { .. } => ID_SIZE + 1,
    };
    check_frame(body_len)?;
    out.reserve(LEN_PREFIX + body_len);
    out.extend_from_slice(&(body_len as u32).to_be_bytes());
    out.extend_from_slice(&req.id().to_be_bytes());
    match req {
        Request::Get { key, .. } => {
            out.push(op::GET);
            put_blob(out, key);
        }
        Request::Put { key, value, .. } => {
            out.push(op::PUT);
            put_blob(out, key);
            put_blob(out, value);
        }
        Request::Delete { key, .. } => {
            out.push(op::DELETE);
            put_blob(out, key);
        }
        Request::Ping { .. } => out.push(op::PING),
        Request::Stats { .. } => out.push(op::STATS),
        Request::Trace { .. } => out.push(op::TRACE),
        Request::Recorder { .. } => out.push(op::RECORDER),
    }
    Ok(())
}

/// Appends one encoded frame for `resp` to `out`; same cap rules as
/// [`encode_request`].
pub fn encode_response(resp: &Response, out: &mut Vec<u8>) -> Result<(), FrameError> {
    let body_len = match resp {
        Response::Value { value, .. } => ID_SIZE + 1 + 4 + value.len(),
        Response::Err { message, .. } => ID_SIZE + 1 + 4 + message.len(),
        Response::Stats { text, .. } | Response::RecorderDump { text, .. } => {
            ID_SIZE + 1 + 4 + text.len()
        }
        Response::Trace { json, .. } => ID_SIZE + 1 + 4 + json.len(),
        Response::NotFound { .. } | Response::Ok { .. } | Response::Pong { .. } => ID_SIZE + 1,
    };
    check_frame(body_len)?;
    out.reserve(LEN_PREFIX + body_len);
    out.extend_from_slice(&(body_len as u32).to_be_bytes());
    out.extend_from_slice(&resp.id().to_be_bytes());
    match resp {
        Response::Value { value, .. } => {
            out.push(status::VALUE);
            put_blob(out, value);
        }
        Response::NotFound { .. } => out.push(status::NOT_FOUND),
        Response::Ok { .. } => out.push(status::OK),
        Response::Pong { .. } => out.push(status::PONG),
        Response::Err { message, .. } => {
            out.push(status::ERR);
            put_blob(out, message.as_bytes());
        }
        Response::Stats { text, .. } => {
            out.push(status::STATS);
            put_blob(out, text.as_bytes());
        }
        Response::Trace { json, .. } => {
            out.push(status::TRACE);
            put_blob(out, json.as_bytes());
        }
        Response::RecorderDump { text, .. } => {
            out.push(status::RECORDER);
            put_blob(out, text.as_bytes());
        }
    }
    Ok(())
}

fn check_frame(body_len: usize) -> Result<(), FrameError> {
    if body_len > MAX_FRAME {
        return Err(FrameError::Oversized {
            declared: body_len as u64,
            max: MAX_FRAME,
        });
    }
    Ok(())
}

fn put_blob(out: &mut Vec<u8>, blob: &[u8]) {
    out.extend_from_slice(&(blob.len() as u32).to_be_bytes());
    out.extend_from_slice(blob);
}

/// Incremental frame decoder.
///
/// Feed it raw socket bytes in whatever chunks arrive; it buffers the
/// tail of any incomplete frame and yields complete messages on demand.
/// One decoder handles one direction of one connection (requests on the
/// server side, responses on the client side) — the two `next_*` methods
/// share the buffer, so a given stream must only ever use one of them.
#[derive(Default)]
pub struct Decoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by returned frames. Compacted
    /// lazily so steady-state decoding is copy-free.
    pos: usize,
}

impl Decoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly read bytes to the internal buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: once prior frames are consumed their
        // bytes are dead, and dropping them first keeps the buffer's
        // high-water mark near one frame, not one connection-lifetime.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed (diagnostics).
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next complete frame's body off the buffer, or `None` if
    /// a full frame has not arrived. Enforces [`MAX_FRAME`] from the
    /// header alone, before any body bytes are waited on or allocated.
    fn next_body(&mut self) -> Result<Option<&[u8]>, FrameError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < LEN_PREFIX {
            return Ok(None);
        }
        let declared = u32::from_be_bytes(avail[..LEN_PREFIX].try_into().unwrap()) as usize;
        if declared > MAX_FRAME {
            return Err(FrameError::Oversized {
                declared: declared as u64,
                max: MAX_FRAME,
            });
        }
        if avail.len() < LEN_PREFIX + declared {
            return Ok(None);
        }
        let start = self.pos + LEN_PREFIX;
        self.pos = start + declared;
        Ok(Some(&self.buf[start..start + declared]))
    }

    /// Decodes the next complete request, if one is buffered.
    ///
    /// `Ok(None)` means "need more bytes"; any `Err` is fatal to the
    /// stream (see [`FrameError`]).
    pub fn next_request(&mut self) -> Result<Option<Request>, FrameError> {
        let body = match self.next_body()? {
            Some(b) => b,
            None => return Ok(None),
        };
        let mut cur = Cursor::new(body);
        let id = cur.u64()?;
        let opcode = cur.u8()?;
        let req = match opcode {
            op::GET => Request::Get {
                id,
                key: cur.blob()?,
            },
            op::PUT => Request::Put {
                id,
                key: cur.blob()?,
                value: cur.blob()?,
            },
            op::DELETE => Request::Delete {
                id,
                key: cur.blob()?,
            },
            op::PING => Request::Ping { id },
            op::STATS => Request::Stats { id },
            op::TRACE => Request::Trace { id },
            op::RECORDER => Request::Recorder { id },
            other => return Err(FrameError::BadOpcode(other)),
        };
        cur.finish()?;
        Ok(Some(req))
    }

    /// Decodes the next complete response, if one is buffered. Same
    /// contract as [`Decoder::next_request`].
    pub fn next_response(&mut self) -> Result<Option<Response>, FrameError> {
        let body = match self.next_body()? {
            Some(b) => b,
            None => return Ok(None),
        };
        let mut cur = Cursor::new(body);
        let id = cur.u64()?;
        let code = cur.u8()?;
        let resp = match code {
            status::VALUE => Response::Value {
                id,
                value: cur.blob()?,
            },
            status::NOT_FOUND => Response::NotFound { id },
            status::OK => Response::Ok { id },
            status::PONG => Response::Pong { id },
            status::ERR => {
                let raw = cur.blob()?;
                let message = String::from_utf8(raw)
                    .map_err(|_| FrameError::Malformed("error message is not UTF-8"))?;
                Response::Err { id, message }
            }
            status::STATS => {
                let raw = cur.blob()?;
                let text = String::from_utf8(raw)
                    .map_err(|_| FrameError::Malformed("stats text is not UTF-8"))?;
                Response::Stats { id, text }
            }
            status::TRACE => {
                let raw = cur.blob()?;
                let json = String::from_utf8(raw)
                    .map_err(|_| FrameError::Malformed("trace json is not UTF-8"))?;
                Response::Trace { id, json }
            }
            status::RECORDER => {
                let raw = cur.blob()?;
                let text = String::from_utf8(raw)
                    .map_err(|_| FrameError::Malformed("recorder text is not UTF-8"))?;
                Response::RecorderDump { id, text }
            }
            other => return Err(FrameError::BadStatus(other)),
        };
        cur.finish()?;
        Ok(Some(resp))
    }
}

impl fmt::Debug for Decoder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Decoder")
            .field("pending", &self.pending())
            .finish()
    }
}

/// A bounds-checked reader over one frame body.
struct Cursor<'a> {
    body: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(body: &'a [u8]) -> Self {
        Self { body, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.body.len())
            .ok_or(FrameError::Malformed("field overruns frame"))?;
        let s = &self.body[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A `u32`-length-prefixed byte string. The length is validated
    /// against the *remaining frame bytes* before any copy, so a huge
    /// declared blob inside a small frame errors instead of allocating.
    fn blob(&mut self) -> Result<Vec<u8>, FrameError> {
        let n = u32::from_be_bytes(self.take(4)?.try_into().unwrap()) as usize;
        Ok(self.take(n)?.to_vec())
    }

    /// Declares the body fully parsed; trailing bytes are an error (a
    /// frame must tile exactly, or the peer disagrees about the format).
    fn finish(self) -> Result<(), FrameError> {
        if self.at != self.body.len() {
            return Err(FrameError::Malformed("trailing bytes in frame"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_requests(reqs: &[Request], chunk: usize) -> Vec<Request> {
        let mut wire = Vec::new();
        for r in reqs {
            encode_request(r, &mut wire).expect("encode");
        }
        let mut dec = Decoder::new();
        let mut out = Vec::new();
        for piece in wire.chunks(chunk.max(1)) {
            dec.feed(piece);
            while let Some(r) = dec.next_request().expect("decode") {
                out.push(r);
            }
        }
        assert_eq!(dec.pending(), 0, "no leftover bytes");
        out
    }

    #[test]
    fn request_roundtrip_all_ops() {
        let reqs = vec![
            Request::Get {
                id: 1,
                key: b"alpha".to_vec(),
            },
            Request::Put {
                id: 2,
                key: b"beta".to_vec(),
                value: vec![0, 159, 146, 150],
            },
            Request::Delete {
                id: u64::MAX,
                key: Vec::new(),
            },
            Request::Ping { id: 0 },
            Request::Stats { id: 99 },
            Request::Trace { id: 100 },
            Request::Recorder { id: 101 },
        ];
        for chunk in [1, 3, 7, 4096] {
            assert_eq!(roundtrip_requests(&reqs, chunk), reqs, "chunk={chunk}");
        }
    }

    #[test]
    fn response_roundtrip_all_statuses() {
        let resps = vec![
            Response::Value {
                id: 9,
                value: b"v".repeat(300),
            },
            Response::NotFound { id: 10 },
            Response::Ok { id: 11 },
            Response::Pong { id: 12 },
            Response::Err {
                id: 13,
                message: "shard on fire".to_string(),
            },
            Response::Stats {
                id: 14,
                text: "minikv.acquires 12\nnet.requests 3\n".to_string(),
            },
            Response::Trace {
                id: 15,
                json: "{\"traceEvents\":[\n]}\n".to_string(),
            },
            Response::RecorderDump {
                id: 16,
                text: "0001 shard.lock Acquire arg=3\n".to_string(),
            },
        ];
        let mut wire = Vec::new();
        for r in &resps {
            encode_response(r, &mut wire).unwrap();
        }
        let mut dec = Decoder::new();
        let mut out = Vec::new();
        for b in &wire {
            // Worst case: one byte at a time.
            dec.feed(core::slice::from_ref(b));
            while let Some(r) = dec.next_response().unwrap() {
                out.push(r);
            }
        }
        assert_eq!(out, resps);
    }

    #[test]
    fn partial_frame_is_none_not_error() {
        let mut wire = Vec::new();
        encode_request(
            &Request::Put {
                id: 7,
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            },
            &mut wire,
        )
        .unwrap();
        let mut dec = Decoder::new();
        // Every proper prefix must decode to "not yet".
        for cut in 0..wire.len() {
            let mut d = Decoder::new();
            d.feed(&wire[..cut]);
            assert_eq!(d.next_request(), Ok(None), "cut at {cut}");
        }
        dec.feed(&wire);
        assert!(dec.next_request().unwrap().is_some());
    }

    #[test]
    fn oversized_prefix_errors_before_body_arrives() {
        let mut dec = Decoder::new();
        // Declared 512 MiB; only the header is present. Must error now —
        // not wait for (or allocate) the body.
        dec.feed(&(512u32 << 20).to_be_bytes());
        assert_eq!(
            dec.next_request(),
            Err(FrameError::Oversized {
                declared: 512 << 20,
                max: MAX_FRAME,
            })
        );
    }

    #[test]
    fn encode_enforces_the_same_cap() {
        let mut out = Vec::new();
        let too_big = Request::Put {
            id: 1,
            key: vec![0; MAX_FRAME],
            value: vec![0; 4],
        };
        assert!(matches!(
            encode_request(&too_big, &mut out),
            Err(FrameError::Oversized { .. })
        ));
        assert!(out.is_empty(), "failed encode must write nothing");
    }

    #[test]
    fn garbage_opcode_and_status_error_cleanly() {
        // Hand-build a frame with opcode 0x77.
        let mut wire = Vec::new();
        wire.extend_from_slice(&9u32.to_be_bytes());
        wire.extend_from_slice(&1u64.to_be_bytes());
        wire.push(0x77);
        let mut dec = Decoder::new();
        dec.feed(&wire);
        assert_eq!(dec.next_request(), Err(FrameError::BadOpcode(0x77)));
        let mut dec = Decoder::new();
        dec.feed(&wire);
        assert_eq!(dec.next_response(), Err(FrameError::BadStatus(0x77)));
    }

    #[test]
    fn blob_overrunning_its_frame_is_malformed() {
        // GET whose klen claims 100 bytes but the frame only holds 3.
        let mut wire = Vec::new();
        let body_len = 8 + 1 + 4 + 3;
        wire.extend_from_slice(&(body_len as u32).to_be_bytes());
        wire.extend_from_slice(&5u64.to_be_bytes());
        wire.push(0x01);
        wire.extend_from_slice(&100u32.to_be_bytes());
        wire.extend_from_slice(b"abc");
        let mut dec = Decoder::new();
        dec.feed(&wire);
        assert!(matches!(dec.next_request(), Err(FrameError::Malformed(_))));
    }

    #[test]
    fn trailing_bytes_in_frame_are_malformed() {
        // A PING body with one extra byte appended inside the frame.
        let mut wire = Vec::new();
        wire.extend_from_slice(&10u32.to_be_bytes());
        wire.extend_from_slice(&2u64.to_be_bytes());
        wire.push(0x04);
        wire.push(0xFF);
        let mut dec = Decoder::new();
        dec.feed(&wire);
        assert_eq!(
            dec.next_request(),
            Err(FrameError::Malformed("trailing bytes in frame"))
        );
    }

    #[test]
    fn non_utf8_error_message_is_malformed() {
        let mut wire = Vec::new();
        let body_len = 8 + 1 + 4 + 2;
        wire.extend_from_slice(&(body_len as u32).to_be_bytes());
        wire.extend_from_slice(&3u64.to_be_bytes());
        wire.push(0x84);
        wire.extend_from_slice(&2u32.to_be_bytes());
        wire.extend_from_slice(&[0xFF, 0xFE]);
        let mut dec = Decoder::new();
        dec.feed(&wire);
        assert!(matches!(dec.next_response(), Err(FrameError::Malformed(_))));
    }

    #[test]
    fn decoder_compacts_consumed_bytes() {
        let mut dec = Decoder::new();
        let mut wire = Vec::new();
        encode_request(&Request::Ping { id: 1 }, &mut wire).unwrap();
        for _ in 0..1000 {
            dec.feed(&wire);
            assert!(dec.next_request().unwrap().is_some());
        }
        assert_eq!(dec.pending(), 0);
        // The buffer must not have grown with the connection lifetime.
        assert!(dec.buf.len() <= 2 * wire.len(), "buf={}", dec.buf.len());
    }
}
