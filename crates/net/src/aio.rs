//! Nonblocking socket I/O as futures, parked on the harness
//! [`Reactor`].
//!
//! Each helper is the same three-step shape, straight from the reactor's
//! contract: attempt the nonblocking syscall; on `WouldBlock`, register
//! the task's waker and return `Pending`; on the next tick, re-attempt.
//! Sockets that are already ready complete on the first poll and never
//! touch the reactor at all. `Interrupted` (EINTR) retries inside the
//! poll, every other error surfaces to the caller.
//!
//! The read and accept helpers also watch a `stop` flag so graceful
//! shutdown needs no side channel: a parked reader is woken by the next
//! reactor tick, observes the flag, and resolves as if the peer had
//! closed — which is exactly how the server's connection loop wants to
//! treat it.

use hemlock_harness::Reactor;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::task::Poll;

/// Reads at least one byte into `buf` from a nonblocking `stream`,
/// suspending (via `reactor`) while no bytes are available.
///
/// Resolves `Ok(0)` on EOF **or** once `stop` is set — the caller treats
/// both as "this connection is done reading", which is the graceful-
/// shutdown path: already-buffered requests were decoded before the
/// caller came back to read.
pub async fn read_some(
    stream: &TcpStream,
    reactor: &Reactor,
    stop: &AtomicBool,
    buf: &mut [u8],
) -> io::Result<usize> {
    std::future::poll_fn(|cx| {
        if stop.load(Ordering::Acquire) {
            return Poll::Ready(Ok(0));
        }
        loop {
            match (&*stream).read(buf) {
                Ok(n) => return Poll::Ready(Ok(n)),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    reactor.register(cx.waker());
                    return Poll::Pending;
                }
                Err(e) => return Poll::Ready(Err(e)),
            }
        }
    })
    .await
}

/// Writes all of `data` to a nonblocking `stream`, suspending whenever
/// the socket buffer is full.
///
/// No `stop` flag here on purpose: the graceful-shutdown contract is
/// that every decoded request gets its response *flushed*, so the write
/// path keeps draining even while the server is stopping.
pub async fn write_all(stream: &TcpStream, reactor: &Reactor, data: &[u8]) -> io::Result<()> {
    let mut at = 0usize;
    std::future::poll_fn(move |cx| {
        while at < data.len() {
            match (&*stream).write(&data[at..]) {
                Ok(0) => return Poll::Ready(Err(io::ErrorKind::WriteZero.into())),
                Ok(n) => at += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    reactor.register(cx.waker());
                    return Poll::Pending;
                }
                Err(e) => return Poll::Ready(Err(e)),
            }
        }
        Poll::Ready(Ok(()))
    })
    .await
}

/// Accepts one connection from a nonblocking `listener`, suspending
/// while none is pending. Resolves `Ok(None)` once `stop` is set.
pub async fn accept(
    listener: &TcpListener,
    reactor: &Reactor,
    stop: &AtomicBool,
) -> io::Result<Option<(TcpStream, SocketAddr)>> {
    std::future::poll_fn(|cx| {
        if stop.load(Ordering::Acquire) {
            return Poll::Ready(Ok(None));
        }
        loop {
            match listener.accept() {
                Ok(pair) => return Poll::Ready(Ok(Some(pair))),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    reactor.register(cx.waker());
                    return Poll::Pending;
                }
                Err(e) => return Poll::Ready(Err(e)),
            }
        }
    })
    .await
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemlock_harness::executor::block_on;
    use std::sync::Arc;

    #[test]
    fn read_write_roundtrip_over_loopback() {
        let reactor = Reactor::new();
        let stop = AtomicBool::new(false);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();

        let peer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"hello").unwrap();
            let mut back = [0u8; 5];
            s.read_exact(&mut back).unwrap();
            back
        });

        let echoed = block_on(async {
            let (stream, _) = accept(&listener, &reactor, &stop).await.unwrap().unwrap();
            stream.set_nonblocking(true).unwrap();
            let mut buf = [0u8; 16];
            let mut got = Vec::new();
            while got.len() < 5 {
                let n = read_some(&stream, &reactor, &stop, &mut buf).await.unwrap();
                assert_ne!(n, 0, "peer closed early");
                got.extend_from_slice(&buf[..n]);
            }
            write_all(&stream, &reactor, &got).await.unwrap();
            got
        });
        assert_eq!(echoed, b"hello");
        assert_eq!(&peer.join().unwrap(), b"hello");
    }

    #[test]
    fn stop_flag_resolves_a_parked_reader_as_eof() {
        let reactor = Arc::new(Reactor::new());
        let stop = Arc::new(AtomicBool::new(false));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Keep the far end open but silent: the reader must park.
        let _quiet = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let (r2, s2) = (Arc::clone(&reactor), Arc::clone(&stop));
        let t = std::thread::spawn(move || {
            block_on(async move {
                let mut buf = [0u8; 8];
                read_some(&server_side, &r2, &s2, &mut buf).await.unwrap()
            })
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        stop.store(true, Ordering::Release);
        // The parked reader re-registers every tick, so the tick after the
        // store wakes it and the poll observes the flag.
        assert_eq!(t.join().unwrap(), 0, "stop must read as EOF");
    }
}
