//! Wire ⇄ batch-op conversions: the glue that keeps the protocol from
//! inventing a fourth op vocabulary.
//!
//! `hemlock-minikv` owns the shared batch shapes
//! ([`KvOp`] / [`KvResult`]); this module maps them 1:1 onto the framed
//! [`Request`] / [`Response`] pairs, carrying the protocol's request id
//! alongside. Some wire variants have no KV meaning — a
//! [`Request::Ping`] is connection liveness, [`Request::Stats`] is a
//! metrics snapshot, and a [`Response::Err`] is a transport-level
//! failure — so the wire→KV direction is `TryFrom`, handing the non-KV
//! message back unchanged as the error. The KV→wire direction is total
//! (`From`).
//!
//! The server's burst dispatch is exactly these conversions in a loop:
//! decode a pipeline burst, `try_from` each request (answering pings
//! inline), feed the `KvOp`s to
//! [`AsyncKv::apply_batch_async`](hemlock_minikv::AsyncKv::apply_batch_async)
//! as one unit, and `from` each positional [`KvResult`] back into the
//! response stream.

use crate::proto::{Request, Response};
use hemlock_minikv::{KvOp, KvResult};

impl From<(u64, KvOp)> for Request {
    fn from((id, op): (u64, KvOp)) -> Self {
        match op {
            KvOp::Get(key) => Request::Get { id, key },
            KvOp::Put(key, value) => Request::Put { id, key, value },
            KvOp::Delete(key) => Request::Delete { id, key },
        }
    }
}

impl TryFrom<Request> for (u64, KvOp) {
    /// The non-KV requests ([`Request::Ping`], [`Request::Stats`]),
    /// returned unchanged so the caller can answer them inline.
    type Error = Request;

    fn try_from(req: Request) -> Result<Self, Request> {
        match req {
            Request::Get { id, key } => Ok((id, KvOp::Get(key))),
            Request::Put { id, key, value } => Ok((id, KvOp::Put(key, value))),
            Request::Delete { id, key } => Ok((id, KvOp::Delete(key))),
            other @ (Request::Ping { .. }
            | Request::Stats { .. }
            | Request::Trace { .. }
            | Request::Recorder { .. }) => Err(other),
        }
    }
}

impl From<(u64, KvResult)> for Response {
    fn from((id, res): (u64, KvResult)) -> Self {
        match res {
            KvResult::Value(Some(value)) => Response::Value { id, value },
            KvResult::Value(None) => Response::NotFound { id },
            KvResult::Done => Response::Ok { id },
        }
    }
}

impl TryFrom<Response> for (u64, KvResult) {
    /// The non-KV responses ([`Response::Pong`], [`Response::Err`]),
    /// returned unchanged.
    type Error = Response;

    fn try_from(resp: Response) -> Result<Self, Response> {
        match resp {
            Response::Value { id, value } => Ok((id, KvResult::Value(Some(value)))),
            Response::NotFound { id } => Ok((id, KvResult::Value(None))),
            Response::Ok { id } => Ok((id, KvResult::Done)),
            other => Err(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_requests_roundtrip_through_the_wire_shape() {
        let cases = vec![
            (7u64, KvOp::Get(b"k".to_vec())),
            (8, KvOp::Put(b"k".to_vec(), b"v".to_vec())),
            (9, KvOp::Delete(b"k".to_vec())),
        ];
        for (id, op) in cases {
            let req = Request::from((id, op.clone()));
            assert_eq!(req.id(), id);
            assert_eq!(<(u64, KvOp)>::try_from(req), Ok((id, op)));
        }
    }

    #[test]
    fn ping_and_stats_are_handed_back_not_converted() {
        for req in [
            Request::Ping { id: 3 },
            Request::Stats { id: 4 },
            Request::Trace { id: 5 },
            Request::Recorder { id: 6 },
        ] {
            assert_eq!(<(u64, KvOp)>::try_from(req.clone()), Err(req));
        }
    }

    #[test]
    fn kv_results_roundtrip_through_the_wire_shape() {
        let cases = vec![
            (1u64, KvResult::Value(Some(b"v".to_vec()))),
            (2, KvResult::Value(None)),
            (3, KvResult::Done),
        ];
        for (id, res) in cases {
            let resp = Response::from((id, res.clone()));
            assert_eq!(resp.id(), id);
            assert_eq!(<(u64, KvResult)>::try_from(resp), Ok((id, res)));
        }
    }

    #[test]
    fn pong_and_err_are_handed_back_not_converted() {
        for resp in [
            Response::Pong { id: 4 },
            Response::Err {
                id: 5,
                message: "boom".into(),
            },
            Response::Stats {
                id: 6,
                text: "net.requests 1\n".into(),
            },
        ] {
            assert_eq!(<(u64, KvResult)>::try_from(resp.clone()), Err(resp));
        }
    }
}
