//! # hemlock-net
//!
//! A networked front-end for `hemlock-minikv`: every lock algorithm in
//! the suite can now be exercised the way a lock in a real service is —
//! under pipelined request streams arriving over TCP, with the store's
//! contention profile set by client-side key skew rather than a
//! synthetic critical-section loop.
//!
//! Three layers, bottom up:
//!
//! - [`proto`] — a length-prefixed binary protocol (`GET`/`PUT`/
//!   `DELETE`/`PING`) with client-chosen request ids for pipelining,
//!   a strict frame cap, and an incremental [`Decoder`] that tolerates
//!   arbitrary packetization;
//! - [`aio`] + [`server`] — nonblocking-socket futures parked on the
//!   harness [`hemlock_harness::Reactor`], and a task-per-connection
//!   server on the in-tree `TaskPool` serving any
//!   [`hemlock_minikv::AsyncKv`] (i.e. a `Db` over any `async.*`
//!   catalog lock) with graceful, no-request-lost shutdown;
//! - [`client`] — a blocking pipelined [`Client`] plus the async
//!   [`AsyncConn`] the `loadgen` bench uses to drive many connections
//!   per thread.
//!
//! In-process quickstart (the loopback integration test and
//! `examples/net_kv.rs` are the fuller versions):
//!
//! ```
//! use hemlock_core::hemlock::Hemlock;
//! use hemlock_harness::executor::TaskPool;
//! use hemlock_minikv::Db;
//! use hemlock_net::{spawn_server, Client};
//! use std::sync::Arc;
//!
//! let pool = Arc::new(TaskPool::new(2));
//! let db: Arc<Db<Hemlock>> = Arc::new(Db::new(Default::default()));
//! let server = spawn_server(&pool, db.into_async_kv(), "127.0.0.1:0".parse().unwrap()).unwrap();
//!
//! let mut c = Client::connect(server.local_addr()).unwrap();
//! c.put(b"k", b"v").unwrap();
//! assert_eq!(c.get(b"k").unwrap(), Some(b"v".to_vec()));
//! drop(c);
//!
//! let stats = server.shutdown();
//! assert_eq!(stats.requests, 2);
//! ```

#![deny(missing_docs)]

pub mod aio;
pub mod client;
pub mod convert;
pub mod proto;
pub mod server;

pub use client::{AsyncConn, Client, Op};
pub use proto::{
    encode_request, encode_response, Decoder, FrameError, Request, Response, MAX_FRAME,
};
pub use server::{spawn_server, spawn_server_with, ServerHandle, ServerOptions, ServerStats};

#[cfg(test)]
mod proptests {
    use crate::proto::*;
    use proptest::prelude::*;

    fn blob() -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(any::<u8>(), 0..80)
    }

    fn request() -> impl Strategy<Value = Request> {
        prop_oneof![
            (any::<u64>(), blob()).prop_map(|(id, key)| Request::Get { id, key }),
            (any::<u64>(), blob(), blob()).prop_map(|(id, key, value)| Request::Put {
                id,
                key,
                value
            }),
            (any::<u64>(), blob()).prop_map(|(id, key)| Request::Delete { id, key }),
            any::<u64>().prop_map(|id| Request::Ping { id }),
        ]
    }

    fn response() -> impl Strategy<Value = Response> {
        prop_oneof![
            (any::<u64>(), blob()).prop_map(|(id, value)| Response::Value { id, value }),
            any::<u64>().prop_map(|id| Response::NotFound { id }),
            any::<u64>().prop_map(|id| Response::Ok { id }),
            any::<u64>().prop_map(|id| Response::Pong { id }),
            (any::<u64>(), proptest::collection::vec(97u8..123, 0..40)).prop_map(|(id, raw)| {
                Response::Err {
                    id,
                    message: String::from_utf8(raw).expect("ascii"),
                }
            }),
        ]
    }

    proptest! {
        /// Any request sequence survives encode → arbitrary re-chunking →
        /// decode, byte-for-byte.
        #[test]
        fn request_stream_roundtrips(
            reqs in proptest::collection::vec(request(), 1..20),
            chunk in 1usize..64,
        ) {
            let mut wire = Vec::new();
            for r in &reqs {
                encode_request(r, &mut wire).expect("encode");
            }
            let mut dec = Decoder::new();
            let mut out = Vec::new();
            for piece in wire.chunks(chunk) {
                dec.feed(piece);
                while let Some(r) = dec.next_request().expect("decode") {
                    out.push(r);
                }
            }
            prop_assert_eq!(out, reqs);
            prop_assert_eq!(dec.pending(), 0);
        }

        /// Same for response sequences.
        #[test]
        fn response_stream_roundtrips(
            resps in proptest::collection::vec(response(), 1..20),
            chunk in 1usize..64,
        ) {
            let mut wire = Vec::new();
            for r in &resps {
                encode_response(r, &mut wire).expect("encode");
            }
            let mut dec = Decoder::new();
            let mut out = Vec::new();
            for piece in wire.chunks(chunk) {
                dec.feed(piece);
                while let Some(r) = dec.next_response().expect("decode") {
                    out.push(r);
                }
            }
            prop_assert_eq!(out, resps);
        }

        /// Garbage never panics the decoder: it yields frames, "need more
        /// bytes", or an error — and after the first error the stream is
        /// abandoned, mirroring the server's drop-the-connection rule.
        #[test]
        fn arbitrary_bytes_never_panic(
            bytes in proptest::collection::vec(any::<u8>(), 0..400),
            chunk in 1usize..32,
        ) {
            let mut dec = Decoder::new();
            'outer: for piece in bytes.chunks(chunk) {
                dec.feed(piece);
                loop {
                    match dec.next_request() {
                        Ok(Some(_)) => {}
                        Ok(None) => break,
                        Err(_) => break 'outer,
                    }
                }
            }
        }

        /// A truncated valid frame is always "need more bytes", and the
        /// remainder completes it.
        #[test]
        fn truncation_is_recoverable(req in request(), cut_seed: u64) {
            let mut wire = Vec::new();
            encode_request(&req, &mut wire).expect("encode");
            let cut = (cut_seed as usize) % wire.len();
            let mut dec = Decoder::new();
            dec.feed(&wire[..cut]);
            prop_assert_eq!(dec.next_request(), Ok(None));
            dec.feed(&wire[cut..]);
            prop_assert_eq!(dec.next_request(), Ok(Some(req)));
        }
    }
}
