//! Clients: a blocking pipelined [`Client`] and an async [`AsyncConn`]
//! for driving many connections from a few threads (`loadgen`).
//!
//! Both speak the same batch discipline: assign consecutive request
//! ids, write the whole batch in one syscall-sized burst, then collect
//! responses **by id** — the protocol lets a server complete pipelined
//! requests out of order, so position on the wire is not trusted.

use crate::aio;
use crate::proto::{encode_request, Decoder, FrameError, Request, Response};
use hemlock_harness::Reactor;
use hemlock_minikv::KvOp;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::AtomicBool;

/// One operation in a pipelined batch (borrowed: batches are built from
/// caller-owned key/value buffers without copies until encode).
#[derive(Debug, Clone, Copy)]
pub enum Op<'a> {
    /// Point lookup.
    Get(&'a [u8]),
    /// Insert or overwrite.
    Put(&'a [u8], &'a [u8]),
    /// Remove a key.
    Delete(&'a [u8]),
    /// Liveness probe.
    Ping,
    /// Metrics snapshot request.
    Stats,
    /// Trace export request (sampled spans as Chrome-trace JSON).
    Trace,
    /// Flight-recorder dump request.
    Recorder,
}

impl Op<'_> {
    /// Materializes this borrowed view as the stack-wide owned batch op
    /// ([`hemlock_minikv::KvOp`]); `None` for [`Op::Ping`] and
    /// [`Op::Stats`], which are connection-level messages rather than KV
    /// operations. `Op` is just the zero-copy batch-building form of
    /// `KvOp` — the wire encoding, the server dispatch, and the store all
    /// speak the shared vocabulary.
    pub fn to_kv(self) -> Option<KvOp> {
        match self {
            Op::Get(key) => Some(KvOp::Get(key.to_vec())),
            Op::Put(key, value) => Some(KvOp::Put(key.to_vec(), value.to_vec())),
            Op::Delete(key) => Some(KvOp::Delete(key.to_vec())),
            Op::Ping | Op::Stats | Op::Trace | Op::Recorder => None,
        }
    }

    fn to_request(self, id: u64) -> Request {
        match self.to_kv() {
            Some(op) => Request::from((id, op)),
            None => match self {
                Op::Stats => Request::Stats { id },
                Op::Trace => Request::Trace { id },
                Op::Recorder => Request::Recorder { id },
                _ => Request::Ping { id },
            },
        }
    }
}

fn proto_err(e: FrameError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

fn eof_err() -> io::Error {
    io::Error::new(
        io::ErrorKind::UnexpectedEof,
        "server closed with responses outstanding",
    )
}

/// Encodes `ops` with ids `base..base+n` into one buffer.
fn encode_batch(ops: &[Op<'_>], base: u64) -> io::Result<Vec<u8>> {
    let mut wire = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        encode_request(&op.to_request(base + i as u64), &mut wire).map_err(proto_err)?;
    }
    Ok(wire)
}

/// Files a decoded response into its batch slot by id.
fn file_response(slots: &mut [Option<Response>], base: u64, resp: Response) -> io::Result<()> {
    let ix = resp
        .id()
        .checked_sub(base)
        .map(|d| d as usize)
        .filter(|&d| d < slots.len())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "response id outside batch"))?;
    if slots[ix].replace(resp).is_some() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "duplicate response id",
        ));
    }
    Ok(())
}

/// A blocking pipelined client over one TCP connection.
///
/// ```no_run
/// use hemlock_net::{Client, Op};
///
/// let mut c = Client::connect("127.0.0.1:7878".parse().unwrap()).unwrap();
/// c.put(b"k", b"v").unwrap();
/// assert_eq!(c.get(b"k").unwrap(), Some(b"v".to_vec()));
/// let batch = c.pipeline(&[Op::Get(b"k"), Op::Delete(b"k"), Op::Ping]).unwrap();
/// assert_eq!(batch.len(), 3);
/// ```
pub struct Client {
    stream: TcpStream,
    dec: Decoder,
    next_id: u64,
}

impl Client {
    /// Connects (blocking) and disables Nagle — pipelined batches are
    /// already syscall-batched, so delaying small writes only adds RTT.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            dec: Decoder::new(),
            next_id: 1,
        })
    }

    /// Sends `ops` as one pipelined batch and returns the responses in
    /// *op order* (matched by id, whatever order they arrived in).
    pub fn pipeline(&mut self, ops: &[Op<'_>]) -> io::Result<Vec<Response>> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        let base = self.next_id;
        self.next_id += ops.len() as u64;
        let wire = encode_batch(ops, base)?;
        self.stream.write_all(&wire)?;
        let mut slots: Vec<Option<Response>> = vec![None; ops.len()];
        let mut filled = 0usize;
        let mut buf = [0u8; 16 * 1024];
        while filled < ops.len() {
            while let Some(resp) = self.dec.next_response().map_err(proto_err)? {
                file_response(&mut slots, base, resp)?;
                filled += 1;
            }
            if filled == ops.len() {
                break;
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(eof_err());
            }
            self.dec.feed(&buf[..n]);
        }
        Ok(slots.into_iter().map(|s| s.expect("filled")).collect())
    }

    /// Single GET; `Ok(None)` on a miss.
    pub fn get(&mut self, key: &[u8]) -> io::Result<Option<Vec<u8>>> {
        match self.one(Op::Get(key))? {
            Response::Value { value, .. } => Ok(Some(value)),
            Response::NotFound { .. } => Ok(None),
            other => Err(mismatch(&other)),
        }
    }

    /// Single PUT.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> io::Result<()> {
        match self.one(Op::Put(key, value))? {
            Response::Ok { .. } => Ok(()),
            other => Err(mismatch(&other)),
        }
    }

    /// Single DELETE.
    pub fn delete(&mut self, key: &[u8]) -> io::Result<()> {
        match self.one(Op::Delete(key))? {
            Response::Ok { .. } => Ok(()),
            other => Err(mismatch(&other)),
        }
    }

    /// Single PING round-trip (connectivity check).
    pub fn ping(&mut self) -> io::Result<()> {
        match self.one(Op::Ping)? {
            Response::Pong { .. } => Ok(()),
            other => Err(mismatch(&other)),
        }
    }

    /// Fetches the server's metrics snapshot (the `STATS` opcode) as the
    /// line-oriented `"key value"` text `hemlock_obs::Snapshot` renders;
    /// parse it back with `Snapshot::parse_text`.
    pub fn stats(&mut self) -> io::Result<String> {
        match self.one(Op::Stats)? {
            Response::Stats { text, .. } => Ok(text),
            other => Err(mismatch(&other)),
        }
    }

    /// Fetches the server's sampled request spans (the `TRACE` opcode)
    /// as a Chrome-trace-event JSON document; open it in Perfetto or
    /// `chrome://tracing`, or parse it back with
    /// `hemlock_obs::trace::parse_chrome_json`.
    pub fn trace_json(&mut self) -> io::Result<String> {
        match self.one(Op::Trace)? {
            Response::Trace { json, .. } => Ok(json),
            other => Err(mismatch(&other)),
        }
    }

    /// Fetches the server's flight-recorder dump (the `RECORDER` opcode)
    /// as rendered text, site names resolved — the debugger-free path to
    /// the lock-event ring.
    pub fn recorder_dump(&mut self) -> io::Result<String> {
        match self.one(Op::Recorder)? {
            Response::RecorderDump { text, .. } => Ok(text),
            other => Err(mismatch(&other)),
        }
    }

    fn one(&mut self, op: Op<'_>) -> io::Result<Response> {
        Ok(self.pipeline(&[op])?.pop().expect("one response"))
    }
}

fn mismatch(resp: &Response) -> io::Error {
    match resp {
        Response::Err { message, .. } => io::Error::other(format!("server error: {message}")),
        other => io::Error::new(
            io::ErrorKind::InvalidData,
            format!("response kind does not match request: {other:?}"),
        ),
    }
}

/// An async pipelined connection: the same batch discipline as
/// [`Client`], but nonblocking and parked on a [`Reactor`] — so one
/// `TaskPool` worker can interleave dozens of these (how `loadgen`
/// sustains its connection counts without a thread per connection).
pub struct AsyncConn {
    stream: TcpStream,
    dec: Decoder,
    next_id: u64,
    /// Never set: [`aio::read_some`] wants a stop flag; a client batch
    /// always runs to completion and surfaces EOF as an error instead.
    no_stop: AtomicBool,
}

impl AsyncConn {
    /// Connects (the connect itself is blocking — connections are set up
    /// before the measured phase), then switches to nonblocking mode.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(Self {
            stream,
            dec: Decoder::new(),
            next_id: 1,
            no_stop: AtomicBool::new(false),
        })
    }

    /// Sends `ops` as one pipelined batch, suspending on socket
    /// readiness; returns responses in op order.
    pub async fn batch(&mut self, reactor: &Reactor, ops: &[Op<'_>]) -> io::Result<Vec<Response>> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        let base = self.next_id;
        self.next_id += ops.len() as u64;
        let wire = encode_batch(ops, base)?;
        aio::write_all(&self.stream, reactor, &wire).await?;
        let mut slots: Vec<Option<Response>> = vec![None; ops.len()];
        let mut filled = 0usize;
        let mut buf = [0u8; 16 * 1024];
        while filled < ops.len() {
            while let Some(resp) = self.dec.next_response().map_err(proto_err)? {
                file_response(&mut slots, base, resp)?;
                filled += 1;
            }
            if filled == ops.len() {
                break;
            }
            let n = aio::read_some(&self.stream, reactor, &self.no_stop, &mut buf).await?;
            if n == 0 {
                return Err(eof_err());
            }
            self.dec.feed(&buf[..n]);
        }
        Ok(slots.into_iter().map(|s| s.expect("filled")).collect())
    }
}
