//! `kvserver`: the networked minikv server as a standalone binary.
//!
//! Binds `--addr`, builds a [`hemlock_minikv::Db`] over the `async.*`
//! catalog lock named by `--lock` (the lock algorithm is a *runtime*
//! choice — the whole point of the [`hemlock_minikv::AsyncKv`] erasure),
//! and serves task-per-connection on a `TaskPool` of `--threads`
//! workers. With `--secs` it runs that long, shuts down gracefully, and
//! prints totals; without, it serves until the process is killed.
//!
//! ```text
//! kvserver --addr 127.0.0.1:7878 --lock async.hemlock --threads 4 &
//! loadgen  --addr 127.0.0.1:7878 --conns 64 --pipeline 8
//! ```

use hemlock_async::catalog::{self, AsyncCatalogEntry, AsyncLockVisitor};
use hemlock_core::raw::RawTryLock;
use hemlock_harness::executor::TaskPool;
use hemlock_harness::Spec;
use hemlock_minikv::{AsyncKv, Db, Options};
use hemlock_net::{spawn_server_with, ServerOptions};
use std::sync::Arc;
use std::time::Duration;

/// Builds an `Arc<dyn AsyncKv>` for whichever lock type the catalog key
/// dispatches to.
struct MakeDb;

impl AsyncLockVisitor for MakeDb {
    type Output = Arc<dyn AsyncKv>;
    fn visit<L: RawTryLock + 'static>(self, _entry: &'static AsyncCatalogEntry) -> Self::Output {
        Arc::new(Db::<L>::new(Options::default())).into_async_kv()
    }
}

fn or_exit<T>(r: Result<T, String>) -> T {
    r.unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let spec = Spec::new(
        "kvserver",
        "Networked minikv server on the in-tree TaskPool",
    )
    .value(
        "addr",
        "ip:port to bind (default 127.0.0.1:7878; port 0 picks one)",
    )
    .value(
        "lock",
        "central-mutex algorithm, one `async.*` catalog key (default async.hemlock)",
    )
    .value(
        "threads",
        "TaskPool worker threads serving connections (default 4)",
    )
    .value(
        "secs",
        "serve this long then shut down gracefully (default: until killed)",
    )
    .value(
        "combine",
        "on|off (default on): dispatch each pipeline burst as one \
         flat-combined batch instead of per-op",
    )
    .value(
        "obs",
        "on|off (default on): observability collection; `off` measures \
         the disabled fast path (STATS still answers, with frozen counts)",
    )
    .value(
        "stats-interval",
        "dump the metrics snapshot to stderr every this many ms (default \
         0: never)",
    )
    .value(
        "trace",
        "sample 1 in N request bursts for causal tracing (default 0 = \
         off); clients pull the spans as Chrome-trace JSON over the \
         TRACE opcode, the flight recorder over RECORDER",
    )
    .value(
        "trace-seed",
        "offsets which bursts the deterministic trace sampler picks \
         (default 0)",
    );
    let args = spec.parse_env();

    let addr = or_exit(args.addr()).unwrap_or_else(|| "127.0.0.1:7878".parse().unwrap());
    let lock_key = args.get_str("lock", "async.hemlock");
    let workers: usize = args.get("threads", 4);
    let secs: f64 = args.get("secs", 0.0);
    let combine = match args.get_str("combine", "on").as_str() {
        "on" => true,
        "off" => false,
        other => {
            eprintln!("error: --combine must be `on` or `off`, got {other:?}");
            std::process::exit(2);
        }
    };
    match args.get_str("obs", "on").as_str() {
        "on" => hemlock_obs::init(),
        "off" => hemlock_obs::set_enabled(false),
        other => {
            eprintln!("error: --obs must be `on` or `off`, got {other:?}");
            std::process::exit(2);
        }
    }
    let stats_interval_ms: u64 = args.get("stats-interval", 0);
    let trace_every: u32 = args.get("trace", 0u32);
    if trace_every > 0 {
        hemlock_obs::trace::set_sampling(trace_every, args.get("trace-seed", 0u64));
    }

    let entry = catalog::find(&lock_key).unwrap_or_else(|| {
        eprintln!(
            "error: unknown async lock {lock_key:?}; known async locks: {}",
            catalog::keys().join(", ")
        );
        std::process::exit(2);
    });
    let kv = catalog::with_async_lock_type(entry.key, MakeDb)
        .expect("async catalog entries always dispatch");

    let pool = Arc::new(TaskPool::new(workers.max(1)));
    let server =
        spawn_server_with(&pool, kv, addr, ServerOptions { combine }).unwrap_or_else(|e| {
            eprintln!("error: cannot bind {addr}: {e}");
            std::process::exit(1);
        });
    eprintln!(
        "# kvserver: serving {} on {} ({} workers, {} dispatch){}",
        entry.meta.name,
        server.local_addr(),
        pool.workers(),
        if combine { "combined" } else { "per-op" },
        if secs > 0.0 {
            format!(", for {secs}s")
        } else {
            String::new()
        }
    );
    if trace_every > 0 {
        eprintln!("# kvserver: tracing 1 in {trace_every} request burst(s)");
    }

    if stats_interval_ms > 0 {
        // Periodic stderr dump, one daemon thread: the registry is a
        // static, so the snapshot needs no handle to the server.
        std::thread::Builder::new()
            .name("hemlock-statsdump".to_string())
            .spawn(move || loop {
                std::thread::sleep(Duration::from_millis(stats_interval_ms));
                eprintln!(
                    "# kvserver stats\n{}",
                    hemlock_obs::registry().snapshot().render_text()
                );
            })
            .expect("spawn stats thread");
    }

    if secs > 0.0 {
        std::thread::sleep(Duration::from_secs_f64(secs));
        let stats = server.shutdown();
        println!(
            "kvserver: {} connection(s), {} request(s) served",
            stats.connections, stats.requests
        );
    } else {
        // Serve until killed: the acceptor thread owns the listener, so
        // the main thread just parks.
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
}
