//! The KV server: task-per-connection on the in-tree `TaskPool`.
//!
//! Shape:
//!
//! - an **acceptor** — a dedicated OS thread driving an async accept
//!   loop with `block_on`. It cannot run on the pool itself: it holds an
//!   `Arc<TaskPool>` to spawn connection tasks, and if that `Arc` were
//!   the last one dropped *inside* a pool worker, the pool's drop would
//!   join its own worker and deadlock. A plain thread makes that drop
//!   always safe, and keeps every pool worker available for serving.
//! - one **connection task** per accepted socket, spawned on the pool.
//!   Each task loops: decode every complete request, dispatch it to the
//!   [`AsyncKv`] store (suspending on busy shards, never blocking a
//!   worker), flush the encoded responses, then park for more bytes.
//! - a shared tick [`Reactor`] parking all of the above between
//!   readiness attempts.
//!
//! **Graceful shutdown** ([`ServerHandle::shutdown`]) sets one flag.
//! The acceptor observes it within a tick and stops accepting; each
//! connection task observes it at its next read (requests already
//! decoded are answered and flushed first — the write path deliberately
//! ignores the flag) and returns its served-request count. The handle
//! then joins the acceptor and every connection task from the caller's
//! thread — `JoinHandle::join` blocks, which is exactly why the joins
//! happen here and never on a pool worker. No task outlives the call
//! and every fully-received request got its response: the PR-5
//! cancellation-safety work is what makes the remaining case (a task
//! dropped mid-`await` by pool teardown) safe rather than corrupting —
//! async lock futures unregister on drop.

use crate::aio;
use crate::proto::{encode_response, Decoder, Request, Response};
use hemlock_harness::executor::{block_on, JoinHandle, TaskPool};
use hemlock_harness::Reactor;
use hemlock_minikv::AsyncKv;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Totals reported by [`ServerHandle::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections: usize,
    /// Requests that were fully received, executed, **and responded to**.
    pub requests: u64,
}

/// A running server; dropping it without [`ServerHandle::shutdown`]
/// still stops the acceptor, but only `shutdown` reports stats and
/// joins the connection tasks.
pub struct ServerHandle {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<(usize, Vec<JoinHandle<u64>>)>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the server gracefully: no new connections, every decoded
    /// request answered and flushed, every task joined. Call from a
    /// plain thread, **not** from a task on the serving pool (the joins
    /// block).
    pub fn shutdown(mut self) -> ServerStats {
        self.stop.store(true, Ordering::Release);
        let (connections, conns) = self
            .acceptor
            .take()
            .expect("shutdown called once")
            .join()
            .expect("acceptor thread");
        let requests = conns.into_iter().map(JoinHandle::join).sum();
        ServerStats {
            connections,
            requests,
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.acceptor.take() {
            // Join the acceptor (it exits within a tick) but detach the
            // connection handles: resuming a task panic inside drop
            // could double-panic, and the tasks stop on the same flag.
            let _ = t.join();
        }
    }
}

/// Binds `addr` and starts serving `kv` with one pool task per
/// connection. Returns once the listener is bound; serving continues
/// until [`ServerHandle::shutdown`].
pub fn spawn_server(
    pool: &Arc<TaskPool>,
    kv: Arc<dyn AsyncKv>,
    addr: SocketAddr,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let reactor = Arc::new(Reactor::new());
    let acceptor = {
        let pool = Arc::clone(pool);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("hemlock-accept".to_string())
            .spawn(move || accept_loop(&listener, &pool, kv, &reactor, &stop))
            .expect("spawn acceptor thread")
    };
    Ok(ServerHandle {
        local_addr,
        stop,
        acceptor: Some(acceptor),
    })
}

/// Runs on the acceptor thread; returns (connections accepted, one
/// [`JoinHandle`] per connection task).
fn accept_loop(
    listener: &TcpListener,
    pool: &Arc<TaskPool>,
    kv: Arc<dyn AsyncKv>,
    reactor: &Arc<Reactor>,
    stop: &Arc<AtomicBool>,
) -> (usize, Vec<JoinHandle<u64>>) {
    block_on(async {
        let mut conns = Vec::new();
        loop {
            match aio::accept(listener, reactor, stop).await {
                Ok(Some((stream, _peer))) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    conns.push(pool.spawn(serve_conn(
                        stream,
                        Arc::clone(&kv),
                        Arc::clone(reactor),
                        Arc::clone(stop),
                    )));
                }
                Ok(None) => break, // graceful stop
                Err(_) => break,   // listener failed; stop accepting
            }
        }
        (conns.len(), conns)
    })
}

/// One connection's lifetime; returns the number of requests served
/// (executed **and** response flushed).
async fn serve_conn(
    stream: TcpStream,
    kv: Arc<dyn AsyncKv>,
    reactor: Arc<Reactor>,
    stop: Arc<AtomicBool>,
) -> u64 {
    let mut dec = Decoder::new();
    let mut inbuf = vec![0u8; 16 * 1024];
    let mut outbuf = Vec::new();
    let mut served = 0u64;
    loop {
        // Execute everything fully received, in arrival order. Pipelined
        // peers get one flush per read batch rather than per request.
        let mut batched = 0u64;
        loop {
            match dec.next_request() {
                Ok(Some(req)) => {
                    let resp = dispatch(&*kv, req).await;
                    if encode_response(&resp, &mut outbuf).is_err() {
                        return served;
                    }
                    batched += 1;
                }
                Ok(None) => break,
                // Protocol violation: the stream has no resync point, so
                // drop the connection (never panic the task).
                Err(_) => return served,
            }
        }
        if !outbuf.is_empty() {
            if aio::write_all(&stream, &reactor, &outbuf).await.is_err() {
                return served;
            }
            outbuf.clear();
        }
        // Responses above are flushed, so they count even if the next
        // read finds the peer gone.
        served += batched;
        match aio::read_some(&stream, &reactor, &stop, &mut inbuf).await {
            Ok(0) => return served, // EOF or graceful stop
            Ok(n) => dec.feed(&inbuf[..n]),
            Err(_) => return served,
        }
    }
}

/// Executes one request against the store. Infallible by construction —
/// [`Response::Err`] exists for wire completeness, but the in-memory
/// `Db` cannot fail an operation.
async fn dispatch(kv: &dyn AsyncKv, req: Request) -> Response {
    match req {
        Request::Get { id, key } => match kv.get_async(&key).await {
            Some(value) => Response::Value { id, value },
            None => Response::NotFound { id },
        },
        Request::Put { id, key, value } => {
            kv.put_async(&key, &value).await;
            Response::Ok { id }
        }
        Request::Delete { id, key } => {
            kv.delete_async(&key).await;
            Response::Ok { id }
        }
        Request::Ping { id } => Response::Pong { id },
    }
}
