//! The KV server: task-per-connection on the in-tree `TaskPool`.
//!
//! Shape:
//!
//! - an **acceptor** — a dedicated OS thread driving an async accept
//!   loop with `block_on`. It cannot run on the pool itself: it holds an
//!   `Arc<TaskPool>` to spawn connection tasks, and if that `Arc` were
//!   the last one dropped *inside* a pool worker, the pool's drop would
//!   join its own worker and deadlock. A plain thread makes that drop
//!   always safe, and keeps every pool worker available for serving.
//! - one **connection task** per accepted socket, spawned on the pool.
//!   Each task loops: decode every complete request, dispatch it to the
//!   [`AsyncKv`] store (suspending on busy shards, never blocking a
//!   worker), flush the encoded responses, then park for more bytes.
//! - a shared tick [`Reactor`] parking all of the above between
//!   readiness attempts.
//!
//! **Graceful shutdown** ([`ServerHandle::shutdown`]) sets one flag.
//! The acceptor observes it within a tick and stops accepting; each
//! connection task observes it at its next read (requests already
//! decoded are answered and flushed first — the write path deliberately
//! ignores the flag) and returns its served-request count. The handle
//! then joins the acceptor and every connection task from the caller's
//! thread — `JoinHandle::join` blocks, which is exactly why the joins
//! happen here and never on a pool worker. No task outlives the call
//! and every fully-received request got its response: the PR-5
//! cancellation-safety work is what makes the remaining case (a task
//! dropped mid-`await` by pool teardown) safe rather than corrupting —
//! async lock futures unregister on drop.

use crate::aio;
use crate::proto::{encode_response, Decoder, Request, Response};
use hemlock_harness::executor::{block_on, JoinHandle, TaskPool};
use hemlock_harness::Reactor;
use hemlock_minikv::{AsyncKv, KvOp};
use hemlock_obs::trace;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerOptions {
    /// Dispatch each decoded pipeline burst as **one**
    /// [`AsyncKv::apply_batch_async`] call (the flat-combined path: one
    /// shard acquisition per shard touched, one run snapshot for all the
    /// misses) instead of awaiting one future per request. On by
    /// default; `loadgen --combine off` measures the per-op baseline.
    pub combine: bool,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self { combine: true }
    }
}

/// Totals reported by [`ServerHandle::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections: usize,
    /// Requests that were fully received, executed, **and responded to**.
    pub requests: u64,
}

/// A running server; dropping it without [`ServerHandle::shutdown`]
/// still stops the acceptor, but only `shutdown` reports stats and
/// joins the connection tasks.
pub struct ServerHandle {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<(usize, Vec<JoinHandle<u64>>)>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the server gracefully: no new connections, every decoded
    /// request answered and flushed, every task joined. Call from a
    /// plain thread, **not** from a task on the serving pool (the joins
    /// block).
    pub fn shutdown(mut self) -> ServerStats {
        self.stop.store(true, Ordering::Release);
        let (connections, conns) = self
            .acceptor
            .take()
            .expect("shutdown called once")
            .join()
            .expect("acceptor thread");
        let requests = conns.into_iter().map(JoinHandle::join).sum();
        ServerStats {
            connections,
            requests,
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.acceptor.take() {
            // Join the acceptor (it exits within a tick) but detach the
            // connection handles: resuming a task panic inside drop
            // could double-panic, and the tasks stop on the same flag.
            let _ = t.join();
        }
    }
}

/// Binds `addr` and starts serving `kv` with one pool task per
/// connection and default [`ServerOptions`] (burst dispatch combined).
/// Returns once the listener is bound; serving continues until
/// [`ServerHandle::shutdown`].
pub fn spawn_server(
    pool: &Arc<TaskPool>,
    kv: Arc<dyn AsyncKv>,
    addr: SocketAddr,
) -> io::Result<ServerHandle> {
    spawn_server_with(pool, kv, addr, ServerOptions::default())
}

/// [`spawn_server`] with explicit [`ServerOptions`].
pub fn spawn_server_with(
    pool: &Arc<TaskPool>,
    kv: Arc<dyn AsyncKv>,
    addr: SocketAddr,
    opts: ServerOptions,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let reactor = Arc::new(Reactor::new());
    let acceptor = {
        let pool = Arc::clone(pool);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("hemlock-accept".to_string())
            .spawn(move || accept_loop(&listener, &pool, kv, &reactor, &stop, opts))
            .expect("spawn acceptor thread")
    };
    Ok(ServerHandle {
        local_addr,
        stop,
        acceptor: Some(acceptor),
    })
}

/// Runs on the acceptor thread; returns (connections accepted, one
/// [`JoinHandle`] per connection task).
fn accept_loop(
    listener: &TcpListener,
    pool: &Arc<TaskPool>,
    kv: Arc<dyn AsyncKv>,
    reactor: &Arc<Reactor>,
    stop: &Arc<AtomicBool>,
    opts: ServerOptions,
) -> (usize, Vec<JoinHandle<u64>>) {
    block_on(async {
        let mut conns = Vec::new();
        loop {
            match aio::accept(listener, reactor, stop).await {
                Ok(Some((stream, _peer))) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    conns.push(pool.spawn(serve_conn(
                        stream,
                        Arc::clone(&kv),
                        Arc::clone(reactor),
                        Arc::clone(stop),
                        opts,
                    )));
                }
                Ok(None) => break, // graceful stop
                Err(_) => break,   // listener failed; stop accepting
            }
        }
        (conns.len(), conns)
    })
}

/// One connection's lifetime; returns the number of requests served
/// (executed **and** response flushed).
async fn serve_conn(
    stream: TcpStream,
    kv: Arc<dyn AsyncKv>,
    reactor: Arc<Reactor>,
    stop: Arc<AtomicBool>,
    opts: ServerOptions,
) -> u64 {
    if hemlock_obs::enabled() {
        hemlock_obs::registry().net_connections.inc();
    }
    let mut dec = Decoder::new();
    let mut inbuf = vec![0u8; 16 * 1024];
    let mut outbuf = Vec::new();
    let mut reqs: Vec<Request> = Vec::new();
    let mut served = 0u64;
    loop {
        // Drain everything fully received, in arrival order. Pipelined
        // peers get one flush per read batch rather than per request.
        let dec_t0 = if trace::active() { trace::now_ns() } else { 0 };
        loop {
            match dec.next_request() {
                Ok(Some(req)) => reqs.push(req),
                Ok(None) => break,
                // Protocol violation: the stream has no resync point, so
                // drop the connection (never panic the task).
                Err(_) => return served,
            }
        }
        let batched = reqs.len() as u64;
        // One sampling draw per burst: the burst is the unit the server
        // dispatches, flushes, and attributes service time to, so it is
        // also the unit a trace follows. The decode interval is emitted
        // retroactively once the draw says this burst is sampled.
        let trace_id = if batched > 0 {
            trace::sample_request()
        } else {
            0
        };
        if trace_id != 0 {
            trace::span_at(
                trace_id,
                "net.decode",
                dec_t0,
                trace::now_ns(),
                trace::SpanKind::Sync,
            );
        }
        let req_span = trace::AsyncSpan::start(trace_id, "net.request");
        // Server-side *service* time: decoded-to-encoded, excluding the
        // socket. The client's RTT minus this is queueing + transport —
        // the split loadgen's `srv_*` extras make visible.
        let t0 = (hemlock_obs::enabled() && batched > 0).then(|| {
            hemlock_obs::registry().net_inflight.add(batched as i64);
            std::time::Instant::now()
        });
        if opts.combine {
            // The decoded burst IS the batch: one `apply_batch_async`
            // call amortizes the whole read's lock work (flat-combined
            // shard passes, one run snapshot, one freeze check) instead
            // of paying it once per request. `traced` re-arms the
            // thread's trace context on every poll (the pool migrates
            // tasks between workers) and attributes inter-poll gaps to
            // `task.suspend`.
            if trace::traced(trace_id, dispatch_burst(&*kv, &mut reqs, &mut outbuf))
                .await
                .is_err()
            {
                return served;
            }
        } else {
            let dispatched = trace::traced(trace_id, async {
                for req in reqs.drain(..) {
                    let resp = dispatch(&*kv, req).await;
                    if encode_response(&resp, &mut outbuf).is_err() {
                        return Err(());
                    }
                }
                Ok(())
            })
            .await;
            if dispatched.is_err() {
                return served;
            }
        }
        if let Some(t0) = t0 {
            let reg = hemlock_obs::registry();
            let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            reg.net_service_ns.record(ns);
            reg.net_requests.add(batched);
            reg.net_inflight.sub(batched as i64);
        }
        if !outbuf.is_empty() {
            let flush = trace::AsyncSpan::start(trace_id, "net.flush");
            let wrote = aio::write_all(&stream, &reactor, &outbuf).await;
            drop(flush);
            if wrote.is_err() {
                return served;
            }
            outbuf.clear();
        }
        drop(req_span);
        // Responses above are flushed, so they count even if the next
        // read finds the peer gone.
        served += batched;
        match aio::read_some(&stream, &reactor, &stop, &mut inbuf).await {
            Ok(0) => return served, // EOF or graceful stop
            Ok(n) => dec.feed(&inbuf[..n]),
            Err(_) => return served,
        }
    }
}

/// What a burst slot is waiting for: a ping or stats request answered
/// inline, or the next positional result of the batch.
enum Pending {
    Ping(u64),
    Stats(u64),
    Trace(u64),
    Recorder(u64),
    Op(u64),
}

/// The observability registry rendered for the `STATS` opcode.
fn stats_text() -> String {
    hemlock_obs::registry().snapshot().render_text()
}

/// Every sampled span drained and rendered for the `TRACE` opcode.
///
/// The response must fit one protocol frame ([`crate::proto::MAX_FRAME`]);
/// a full set of rings can render to several MiB, so when the document
/// is oversized the oldest half of the events is dropped and the trace
/// re-rendered until it fits — the rings already bound history in
/// records, this bounds it on the wire. Recent spans always survive.
fn trace_json() -> String {
    let mut events = trace::export_events();
    events.sort_by_key(|e| e.t0_ns);
    loop {
        let doc = trace::chrome_trace_json(&events);
        if events.is_empty() || doc.len() + 64 <= crate::proto::MAX_FRAME {
            return doc;
        }
        let drop_n = events.len().div_ceil(2);
        events.drain(..drop_n);
    }
}

/// The flight recorder rendered for the `RECORDER` opcode — the
/// debugger-free path to the lock-event ring (site names resolved).
fn recorder_text() -> String {
    hemlock_obs::recorder::recorder().dump_text()
}

/// Executes one decoded pipeline burst as a single batch: converts the
/// KV requests to [`KvOp`]s (pings are answered in place), feeds them to
/// [`AsyncKv::apply_batch_async`] as one unit, and encodes the
/// positional results back in request order. `Err` means an encode
/// failure — fatal to the connection, like the per-op path.
async fn dispatch_burst(
    kv: &dyn AsyncKv,
    reqs: &mut Vec<Request>,
    outbuf: &mut Vec<u8>,
) -> Result<(), ()> {
    if reqs.is_empty() {
        return Ok(());
    }
    let mut pending = Vec::with_capacity(reqs.len());
    let mut ops = Vec::with_capacity(reqs.len());
    for req in reqs.drain(..) {
        match <(u64, KvOp)>::try_from(req) {
            Ok((id, op)) => {
                pending.push(Pending::Op(id));
                ops.push(op);
            }
            Err(Request::Stats { id }) => pending.push(Pending::Stats(id)),
            Err(Request::Trace { id }) => pending.push(Pending::Trace(id)),
            Err(Request::Recorder { id }) => pending.push(Pending::Recorder(id)),
            Err(other) => pending.push(Pending::Ping(other.id())),
        }
    }
    let mut results = kv.apply_batch_async(&ops).await.into_iter();
    // Encoding is sync within one poll, so it may carry a nested span.
    let enc = trace::SyncSpan::start(trace::current(), "net.encode");
    for p in pending {
        let resp = match p {
            Pending::Ping(id) => Response::Pong { id },
            Pending::Stats(id) => Response::Stats {
                id,
                text: stats_text(),
            },
            Pending::Trace(id) => Response::Trace {
                id,
                json: trace_json(),
            },
            Pending::Recorder(id) => Response::RecorderDump {
                id,
                text: recorder_text(),
            },
            Pending::Op(id) => {
                let res = results.next().expect("batch results are positional");
                Response::from((id, res))
            }
        };
        if encode_response(&resp, outbuf).is_err() {
            return Err(());
        }
    }
    drop(enc);
    Ok(())
}

/// Executes one request against the store. Infallible by construction —
/// [`Response::Err`] exists for wire completeness, but the in-memory
/// `Db` cannot fail an operation.
async fn dispatch(kv: &dyn AsyncKv, req: Request) -> Response {
    match req {
        Request::Get { id, key } => match kv.get_async(&key).await {
            Some(value) => Response::Value { id, value },
            None => Response::NotFound { id },
        },
        Request::Put { id, key, value } => {
            kv.put_async(&key, &value).await;
            Response::Ok { id }
        }
        Request::Delete { id, key } => {
            kv.delete_async(&key).await;
            Response::Ok { id }
        }
        Request::Ping { id } => Response::Pong { id },
        Request::Stats { id } => Response::Stats {
            id,
            text: stats_text(),
        },
        Request::Trace { id } => Response::Trace {
            id,
            json: trace_json(),
        },
        Request::Recorder { id } => Response::RecorderDump {
            id,
            text: recorder_text(),
        },
    }
}
