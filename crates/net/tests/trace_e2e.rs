//! End-to-end tracing integration: a real in-process server on a real
//! socket, sampling every request, with the trace pulled back over the
//! `TRACE` opcode and checked for structural integrity — the same path
//! `loadgen --trace` drives.

use hemlock_harness::executor::TaskPool;
use hemlock_minikv::{Db, Options};
use hemlock_net::{spawn_server_with, Client, Op, ServerOptions};
use hemlock_obs::trace;
use std::sync::Arc;

fn run_against(combine: bool) -> Vec<trace::ExportEvent> {
    let pool = Arc::new(TaskPool::new(2));
    let kv =
        Arc::new(Db::<hemlock_core::hemlock::Hemlock>::new(Options::default())).into_async_kv();
    let server = spawn_server_with(
        &pool,
        kv,
        "127.0.0.1:0".parse().unwrap(),
        ServerOptions { combine },
    )
    .expect("spawn server");

    let mut c = Client::connect(server.local_addr()).expect("connect");
    for round in 0..8u32 {
        let key = format!("k{round}");
        let resps = c
            .pipeline(&[Op::Put(key.as_bytes(), b"v"), Op::Get(key.as_bytes())])
            .expect("pipeline");
        assert_eq!(resps.len(), 2);
    }
    let doc = c.trace_json().expect("TRACE opcode answers");
    drop(c);
    server.shutdown();

    let events = trace::parse_chrome_json(&doc);
    let errs = trace::check_well_formed(&events);
    assert!(errs.is_empty(), "trace integrity: {errs:?}");
    events
}

#[test]
fn traced_requests_export_and_decompose_end_to_end() {
    // Sampling state is process-global; this is the only test in this
    // binary, so it owns the flag for its whole run.
    trace::set_sampling(1, 0);
    trace::reset_rings();

    for combine in [true, false] {
        let events = run_against(combine);
        let decomps = trace::decompose_requests(&events);
        assert!(
            !decomps.is_empty(),
            "sampled requests decompose (combine={combine})"
        );
        for d in &decomps {
            assert!(d.total_ns > 0);
            // The components never claim more than the request's RTT plus
            // the slack the decomposition contract allows for overlap.
            let claimed = d.decode_ns + d.queue_ns + d.lock_wait_ns + d.hold_ns + d.flush_ns;
            assert!(
                claimed <= d.total_ns * 2,
                "components wildly exceed RTT: {d:?}"
            );
        }
        // The server threads recorded decode and request spans.
        let names: std::collections::BTreeSet<&str> =
            events.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains("net.request"), "have: {names:?}");
        assert!(names.contains("net.decode"), "have: {names:?}");
        trace::reset_rings();
    }
    trace::set_sampling(0, 0);
}

#[test]
fn recorder_dump_answers_over_the_wire() {
    let pool = Arc::new(TaskPool::new(1));
    let kv =
        Arc::new(Db::<hemlock_core::hemlock::Hemlock>::new(Options::default())).into_async_kv();
    let server = spawn_server_with(
        &pool,
        kv,
        "127.0.0.1:0".parse().unwrap(),
        ServerOptions { combine: true },
    )
    .expect("spawn server");
    let mut c = Client::connect(server.local_addr()).expect("connect");
    let _ = c.pipeline(&[Op::Put(b"k", b"v")]).expect("pipeline");
    // The dump may be empty (no timeout fired), but the opcode must
    // answer with the rendered-text shape rather than an error.
    let text = c.recorder_dump().expect("RECORDER opcode answers");
    assert!(text.is_ascii() || !text.is_empty());
    drop(c);
    server.shutdown();
}
