//! Model checking of the post-seed protocols.
//!
//! The seed crates' §3 theorems cover the lock algorithms; the layers this
//! workspace grew on top of them (`WakerSet`, `WakerQueue`,
//! `ShardedTable::with_two`, `HemlockRw`, the flat-combining batch layer)
//! are hand-rolled protocols with their own safety arguments. Each is
//! re-encoded in `hemlock-simlock::protocols` as a
//! [`ProtocolSim`] state machine; this module explores those machines the
//! same way [`explore`](crate::explore()) covers the locks — bounded
//! DFS with state hashing, the protocol's named invariants checked at every
//! reachable state, deadlock detection for lost wakeups and stranded
//! grants — plus a seeded long-horizon random-walk driver for the depths
//! the exhaustive pass cannot reach.
//!
//! [`post_seed_scenarios`] is the canonical registry of small-scope
//! configurations; `docs/ARCHITECTURE.md` ("Model checking the post-seed
//! protocols") tabulates them, and each protocol's in-code safety comment
//! names its scenario.

use hemlock_simlock::protocols::{
    DekkerSim, FcRole, FcSim, QueueRole, RwRole, RwSim, TwoShardOp, TwoShardSim, WakerQueueSim,
};
use hemlock_simlock::{ProtoViolation, ProtoWorld, ProtocolSim, SplitMix64};
use std::collections::HashSet;

/// Result of exploring one protocol configuration.
#[derive(Clone, Debug)]
pub struct ProtoReport {
    /// Protocol name ([`ProtocolSim::name`]).
    pub protocol: &'static str,
    /// Distinct states visited.
    pub states: usize,
    /// Invariant violations found (empty = all checked states clean).
    pub violations: Vec<ProtoViolation>,
    /// True when the whole reachable space fit under the state budget.
    pub exhaustive: bool,
    /// Fully-terminated states reached (their terminal invariants ran too).
    pub terminal_states: usize,
}

impl ProtoReport {
    /// True when no violations were found.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Exhaustively explores every interleaving of `world` (up to `max_states`
/// distinct states), running the protocol's invariants at each one and its
/// terminal invariants at every fully-finished state. A state from which no
/// enabled thread's step changes the machine is reported as a
/// `deadlock-freedom` violation — under the parking-as-spinning convention
/// this is exactly how a lost wakeup or stranded grant manifests.
pub fn explore_proto<P>(world: ProtoWorld<P>, max_states: usize) -> ProtoReport
where
    P: ProtocolSim + Clone,
{
    let mut report = ProtoReport {
        protocol: world.proto.name(),
        states: 0,
        violations: Vec::new(),
        exhaustive: true,
        terminal_states: 0,
    };
    let mut visited: HashSet<u64> = HashSet::new();
    let mut stack: Vec<ProtoWorld<P>> = Vec::new();
    visited.insert(world.state_hash());
    stack.push(world);

    while let Some(world) = stack.pop() {
        report.states += 1;
        if report.states >= max_states {
            report.exhaustive = false;
            break;
        }

        if let Err(v) = world.check_now() {
            report.violations.push(v);
            continue;
        }
        if world.all_finished() {
            report.terminal_states += 1;
            if let Err(v) = world.check_terminal_now() {
                report.violations.push(v);
            }
            continue;
        }

        let here = world.state_hash();
        let mut any_progress = false;
        for tid in 0..world.thread_count() {
            if world.threads[tid].done {
                continue;
            }
            let mut next = world.clone();
            next.step(tid);
            let key = next.state_hash();
            if key != here {
                any_progress = true;
            }
            if visited.insert(key) {
                stack.push(next);
            }
        }
        if !any_progress {
            report.violations.push(ProtoViolation {
                invariant: "deadlock-freedom",
                detail: format!(
                    "{}: no enabled thread can change the state (lost wakeup / \
                     stranded grant)",
                    report.protocol
                ),
            });
        }
    }
    report
}

/// Result of a long-horizon random-walk simulation.
#[derive(Clone, Debug)]
pub struct ProtoRunReport {
    /// Protocol name.
    pub protocol: &'static str,
    /// Total scheduler steps executed across all runs.
    pub steps: u64,
    /// Complete executions (fresh world to all-finished).
    pub completed_runs: u64,
    /// First violation observed, if any (per-state invariants, terminal
    /// invariants, or a run that exceeded the per-run liveness cap).
    pub violation: Option<ProtoViolation>,
}

impl ProtoRunReport {
    /// True when every run completed with all invariants intact.
    pub fn clean(&self) -> bool {
        self.violation.is_none()
    }
}

/// Per-run step cap for [`check_proto_random_run`]: a single small-scope
/// execution exceeding this under a probabilistically fair schedule is a
/// liveness failure, not slowness.
const PROTO_RUN_CAP: u64 = 1_000_000;

/// Drives fresh worlds from `make_world` under seeded uniformly-random
/// schedules until at least `min_steps` total scheduler steps have executed,
/// checking the protocol's invariants after every step and its terminal
/// invariants after every completed run. This is the long-horizon
/// complement to [`explore_proto`]: same machines, same oracles, but
/// millions of steps deep instead of exhaustive-but-shallow.
pub fn check_proto_random_run<P>(
    make_world: impl Fn() -> ProtoWorld<P>,
    seed: u64,
    min_steps: u64,
) -> ProtoRunReport
where
    P: ProtocolSim,
{
    let mut rng = SplitMix64::new(seed);
    let mut report = ProtoRunReport {
        protocol: make_world().proto.name(),
        steps: 0,
        completed_runs: 0,
        violation: None,
    };
    while report.steps < min_steps {
        let mut world = make_world();
        let mut run_steps = 0u64;
        while !world.all_finished() {
            let live: Vec<usize> = (0..world.thread_count())
                .filter(|&t| !world.threads[t].done)
                .collect();
            let tid = live[(rng.next() % live.len() as u64) as usize];
            world.step(tid);
            report.steps += 1;
            run_steps += 1;
            if let Err(v) = world.check_now() {
                report.violation = Some(v);
                return report;
            }
            if run_steps >= PROTO_RUN_CAP {
                report.violation = Some(ProtoViolation {
                    invariant: "deadlock-freedom",
                    detail: format!(
                        "{}: run (seed {seed}) still unfinished after {PROTO_RUN_CAP} \
                         steps of a fair schedule",
                        report.protocol
                    ),
                });
                return report;
            }
        }
        if let Err(v) = world.check_terminal_now() {
            report.violation = Some(v);
            return report;
        }
        report.completed_runs += 1;
    }
    report
}

/// One canonical small-scope configuration of a post-seed protocol, bundling
/// its exhaustive explorer and its random-walk driver behind a stable name.
pub struct ProtoScenario {
    /// Stable scenario name (referenced by the in-code safety comments and
    /// the `docs/ARCHITECTURE.md` table).
    pub name: &'static str,
    /// Protocol name ([`ProtocolSim::name`]).
    pub protocol: &'static str,
    /// The invariants this scenario checks (plus implicit
    /// `deadlock-freedom`).
    pub invariants: &'static [&'static str],
    explore_fn: Box<dyn Fn(usize) -> ProtoReport + Send + Sync>,
    random_fn: Box<dyn Fn(u64, u64) -> ProtoRunReport + Send + Sync>,
}

impl ProtoScenario {
    /// Exhaustively explores the scenario under a state budget.
    pub fn explore(&self, max_states: usize) -> ProtoReport {
        (self.explore_fn)(max_states)
    }

    /// Runs the seeded long-horizon simulation for at least `min_steps`
    /// scheduler steps.
    pub fn random_run(&self, seed: u64, min_steps: u64) -> ProtoRunReport {
        (self.random_fn)(seed, min_steps)
    }
}

fn scenario<P>(
    name: &'static str,
    make: impl Fn() -> P + Clone + Send + Sync + 'static,
) -> ProtoScenario
where
    P: ProtocolSim + Clone + 'static,
{
    let proto = make();
    let make2 = make.clone();
    ProtoScenario {
        name,
        protocol: proto.name(),
        invariants: proto.invariants(),
        explore_fn: Box::new(move |max_states| explore_proto(ProtoWorld::new(make()), max_states)),
        random_fn: Box::new(move |seed, min_steps| {
            check_proto_random_run(|| ProtoWorld::new(make2()), seed, min_steps)
        }),
    }
}

/// The canonical registry: one small-scope scenario per post-seed protocol,
/// as documented in `docs/ARCHITECTURE.md` ("Model checking the post-seed
/// protocols").
pub fn post_seed_scenarios() -> Vec<ProtoScenario> {
    vec![
        // WakerSet Dekker pair: three contenders, two lock/unlock rounds
        // each, so unlockers race registrations across rounds.
        scenario("proto.wakerset", || DekkerSim::new(3, 2)),
        // WakerQueue: two lockers bracketing a canceller whose cancel races
        // the holder's direct grant.
        scenario("proto.wakerqueue", || {
            WakerQueueSim::new(vec![
                QueueRole::Lock { rounds: 2 },
                QueueRole::Cancel,
                QueueRole::Lock { rounds: 1 },
            ])
        }),
        // with_two ordered acquire: overlapping pairs over three shards so
        // the second-lock trylock genuinely fails and the drop-and-retry
        // backoff path is explored.
        scenario("proto.with-two", || {
            TwoShardSim::new(
                vec![
                    TwoShardOp {
                        a: 0,
                        b: 1,
                        rounds: 2,
                    },
                    TwoShardOp {
                        a: 2,
                        b: 1,
                        rounds: 2,
                    },
                ],
                vec![4, 0, 4],
            )
        }),
        // HemlockRw: one writer draining two stripes against an untimed
        // reader (withdraw-and-rearm) and a timed reader (withdraw-and-
        // abort).
        scenario("proto.rw", || {
            RwSim::new(
                2,
                vec![
                    RwRole {
                        writer: true,
                        timed: false,
                        rounds: 1,
                    },
                    RwRole {
                        writer: false,
                        timed: false,
                        rounds: 2,
                    },
                    RwRole {
                        writer: false,
                        timed: true,
                        rounds: 1,
                    },
                ],
            )
        }),
        // Flat combining: two posters and a canceller; a waiter that takes
        // the lock mid-wait must combine its own still-posted record.
        scenario("proto.flat-combining", || {
            FcSim::new(vec![
                FcRole { cancel: false },
                FcRole { cancel: false },
                FcRole { cancel: true },
            ])
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_stable_and_unique() {
        let scenarios = post_seed_scenarios();
        assert_eq!(scenarios.len(), 5);
        let names: Vec<&str> = scenarios.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "proto.wakerset",
                "proto.wakerqueue",
                "proto.with-two",
                "proto.rw",
                "proto.flat-combining",
            ]
        );
        for s in &scenarios {
            assert!(
                !s.invariants.is_empty(),
                "{} declares no invariants",
                s.name
            );
        }
    }

    #[test]
    fn proto_budget_exhaustion_clears_exhaustive_flag() {
        let report = post_seed_scenarios()[0].explore(10);
        assert!(!report.exhaustive);
        assert!(report.states <= 10);
    }
}
