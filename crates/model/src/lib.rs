//! # hemlock-model
//!
//! Machine-checks the Hemlock paper's §3 correctness arguments on the
//! simulated machines from `hemlock-simlock`:
//!
//! | Paper result | Check here |
//! |---|---|
//! | Theorem 2 (mutual exclusion) | stateless oracle over every explored state |
//! | Theorem 6 (lockout-freedom) | termination under round-robin + random fair schedules |
//! | Theorem 8 (FIFO) | doorstep-order tracker over every explored path |
//! | Theorem 10 (fere-local spinning) | spin census ≤ associated-lock bound at every state |
//! | §2.2 Figure 1 | junction reconstruction + address-based hand-over draining |
//!
//! Exploration is bounded-exhaustive DFS with state hashing: busy-wait
//! loops collapse (a failed poll re-enters the same state), so small
//! configurations (2–3 threads, 1–2 locks, a few rounds) are covered
//! completely.
//!
//! ```
//! use hemlock_model::{explore, ExploreConfig};
//! use hemlock_simlock::algos::{HemlockSim, HemlockFlavor};
//! use hemlock_simlock::{Program, World};
//!
//! let world = World::new(
//!     HemlockSim::new(2, 1, HemlockFlavor::Ctr),
//!     vec![Program::lock_unlock(0, 0, 0, 1), Program::lock_unlock(0, 0, 0, 1)],
//! );
//! let report = explore(world, ExploreConfig::default());
//! assert!(report.clean() && report.exhaustive);
//! ```

#![deny(missing_docs)]

pub mod checker;
pub mod explore;
pub mod protocols;
pub mod scenario;

pub use checker::{check_fere_local, check_mutual_exclusion, FifoTracker, Violation};
pub use explore::{check_progress, explore, ExploreConfig, ExploreReport};
pub use protocols::{
    check_proto_random_run, explore_proto, post_seed_scenarios, ProtoReport, ProtoRunReport,
    ProtoScenario,
};
pub use scenario::{build_junction, drain_junction, spin_census, Junction};

/// Runs `world` to completion under a seeded random fair schedule, checking
/// mutual exclusion, FIFO, and the fere-local bound after every step. The
/// lock count for the oracles is derived from the world's algorithm.
/// Panics on budget exhaustion; returns violations found (empty = clean).
pub fn check_random_run<A>(
    mut world: hemlock_simlock::World<A>,
    seed: u64,
    max_steps: u64,
) -> Vec<Violation>
where
    A: hemlock_simlock::LockAlgorithm,
{
    let locks = world.algo.locks();
    let mut rng = hemlock_simlock::SplitMix64::new(seed);
    let mut fifo = FifoTracker::new(locks);
    let mut violations = Vec::new();
    let mut steps = 0u64;
    while !world.all_finished() {
        let live: Vec<usize> = (0..world.thread_count())
            .filter(|&t| !world.threads[t].finished())
            .collect();
        let tid = live[(rng.next() % live.len() as u64) as usize];
        let out = world.step(tid);
        for e in &out.events {
            if let Some(v) = fifo.on_event(e) {
                violations.push(v);
            }
        }
        if let Some(v) = check_mutual_exclusion(&world, locks) {
            violations.push(v);
        }
        if let Some(v) = check_fere_local(&mut world) {
            violations.push(v);
        }
        if !violations.is_empty() {
            return violations;
        }
        steps += 1;
        assert!(steps < max_steps, "random run exceeded {max_steps} steps");
    }
    violations
}

#[cfg(test)]
mod proptests {
    use super::*;
    use hemlock_simlock::algos::{HemlockFlavor, HemlockSim};
    use hemlock_simlock::{Program, World};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Arbitrary seeds, thread counts, and rounds: every flavor stays
        /// clean under randomized fair schedules (a complement to the
        /// bounded-exhaustive DFS, reaching deeper executions).
        #[test]
        fn random_schedules_stay_clean(
            seed: u64,
            threads in 2usize..5,
            rounds in 1u32..4,
            flavor_ix in 0usize..6,
        ) {
            let flavor = HemlockFlavor::ALL[flavor_ix];
            let programs = vec![Program::lock_unlock(0, 1, 1, rounds); threads];
            let world = World::new(HemlockSim::new(threads, 1, flavor), programs);
            let violations = check_random_run(world, seed, 10_000_000);
            prop_assert!(violations.is_empty(), "{flavor:?}: {violations:?}");
        }

        /// Two locks with nested acquisition: multi-lock safety under
        /// random schedules for every flavor.
        #[test]
        fn nested_two_locks_stay_clean(seed: u64, flavor_ix in 0usize..6) {
            let flavor = HemlockFlavor::ALL[flavor_ix];
            let nested = Program::new(
                vec![
                    hemlock_simlock::Action::Acquire(0),
                    hemlock_simlock::Action::Acquire(1),
                    hemlock_simlock::Action::Release(1),
                    hemlock_simlock::Action::Release(0),
                ],
                2,
            );
            let world = World::new(
                HemlockSim::new(2, 2, flavor),
                vec![nested.clone(), nested],
            );
            let violations = check_random_run(world, seed, 10_000_000);
            prop_assert!(violations.is_empty(), "{flavor:?}: {violations:?}");
        }
    }
}
