//! Scripted scenarios from the paper's §2.2 object-graph discussion
//! (Figure 1): multi-waiting junctions, and the hand-over-hand pattern that
//! does *not* multi-wait.
//!
//! The interesting structure in Figure 1 is a thread (E) that holds several
//! contended locks at once: the lead waiter of *each* of those queues spins
//! on E's single Grant word, forming a junction of in-degree > 1 in the
//! waits-on graph. [`build_junction`] reconstructs exactly that shape and
//! freezes the world there so tests can census it; [`drain_junction`]
//! releases the locks and verifies address-based disambiguation wakes the
//! right waiter each time.

use hemlock_simlock::algos::{HemlockFlavor, HemlockSim};
use hemlock_simlock::{Event, LockAlgorithm, Meta, Program, World};

/// A frozen multi-waiting configuration: thread 0 holds locks `0..k`, and
/// thread `i` (for `i` in `1..=k`) busy-waits for lock `i-1` on thread 0's
/// Grant word.
pub struct Junction {
    /// The frozen world.
    pub world: World<HemlockSim>,
    /// Number of locks held by the junction thread (= waiters spinning).
    pub k: usize,
}

/// Builds the Figure 1 junction with `k` locks (E = thread 0).
pub fn build_junction(k: usize, flavor: HemlockFlavor) -> Junction {
    assert!(k >= 1);
    let threads = k + 1;
    let algo = HemlockSim::new(threads, k, flavor);
    let mut programs = vec![Program::multiwait_leader(k, 1)];
    for lock in 0..k {
        programs.push(Program::lock_unlock(lock, 0, 0, 1));
    }
    let mut world = World::new(algo, programs);

    // Drive the holder until it owns all k locks (uncontended: k swaps).
    let mut guard = 0;
    while world.threads[0].holding().len() < k {
        world.step(0);
        guard += 1;
        assert!(guard < 10_000, "holder failed to take {k} locks");
    }

    // Drive each waiter until it busy-waits on the holder's Grant word.
    let grant0 = world.algo.grant_word(0).unwrap();
    for tid in 1..=k {
        let mut guard = 0;
        loop {
            if let Some((_, Meta::SpinWait { loc, .. })) = world.peek(tid) {
                assert_eq!(loc, grant0, "waiter {tid} must spin on the holder");
                break;
            }
            world.step(tid);
            guard += 1;
            assert!(guard < 10_000, "waiter {tid} failed to start spinning");
        }
    }
    Junction { world, k }
}

/// Census of busy-waiting: for each thread, how many **other** threads are
/// spinning on its Grant word (with their wait condition still
/// unsatisfied) — the §2.2 multi-waiting degree.
pub fn spin_census(world: &mut World<HemlockSim>) -> Vec<usize> {
    let n = world.thread_count();
    let mut census = vec![0usize; n];
    let grants: Vec<Option<usize>> = (0..n).map(|u| world.algo.grant_word(u)).collect();
    for tid in 0..n {
        if world.threads[tid].finished() {
            continue;
        }
        if let Some((_, Meta::SpinWait { loc, until })) = world.peek(tid) {
            if until.satisfied(world.mem[loc]) {
                continue; // exiting the loop, not spinning
            }
            for (u, g) in grants.iter().enumerate() {
                if *g == Some(loc) && u != tid {
                    census[u] += 1;
                }
            }
        }
    }
    census
}

/// Releases the junction's locks (descending, as in Figure 9's leader) and
/// checks that each hand-over wakes exactly the waiter of that lock —
/// "the outgoing owner writes the lock address into its own grant field to
/// disambiguate" (§1). Returns the number of correct hand-overs observed.
pub fn drain_junction(j: &mut Junction) -> usize {
    let mut correct = 0;
    let mut acquired: Vec<Option<usize>> = vec![None; j.k + 1];
    let mut steps = 0u64;
    while !j.world.all_finished() {
        for tid in 0..j.world.thread_count() {
            if j.world.threads[tid].finished() {
                continue;
            }
            let out = j.world.step(tid);
            for e in out.events {
                if let Event::Acquired { tid, lock } = e {
                    // Waiter `i` waits for lock `i-1` and nothing else.
                    assert_eq!(
                        lock,
                        tid - 1,
                        "wrong waiter woken: thread {tid} got lock {lock}"
                    );
                    acquired[tid] = Some(lock);
                    correct += 1;
                }
            }
        }
        steps += 1;
        assert!(steps < 1_000_000, "junction failed to drain");
    }
    correct
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check_fere_local;

    #[test]
    fn junction_census_equals_locks_held() {
        // Theorem 10's bound is tight: k locks held ⇒ k threads spinning on
        // one Grant word.
        for k in 1..=4 {
            let mut j = build_junction(k, HemlockFlavor::Ctr);
            let census = spin_census(&mut j.world);
            assert_eq!(census[0], k, "junction of degree {k}");
            // But never *above* the bound:
            assert!(check_fere_local(&mut j.world).is_none());
        }
    }

    #[test]
    fn junction_census_naive_flavor() {
        let mut j = build_junction(3, HemlockFlavor::Naive);
        assert_eq!(spin_census(&mut j.world)[0], 3);
    }

    #[test]
    fn junction_drains_to_the_right_waiters() {
        for k in 1..=4 {
            let mut j = build_junction(k, HemlockFlavor::Ctr);
            assert_eq!(drain_junction(&mut j), k);
        }
    }

    #[test]
    fn hand_over_hand_never_multiwaits() {
        // §2.2: "common usage patterns such as hand-over-hand 'coupled'
        // locking do not result in multi-waiting." Three threads chase each
        // other across 4 locks; the census must never exceed 1.
        use hemlock_simlock::SplitMix64;
        for seed in 0..10u64 {
            let algo = HemlockSim::new(3, 4, HemlockFlavor::Ctr);
            let programs = vec![
                Program::hand_over_hand(4, 3),
                Program::hand_over_hand(4, 3),
                Program::hand_over_hand(4, 3),
            ];
            let mut world = World::new(algo, programs);
            let mut rng = SplitMix64::new(seed);
            let mut steps = 0u64;
            while !world.all_finished() {
                let live: Vec<usize> = (0..3).filter(|&t| !world.threads[t].finished()).collect();
                let tid = live[(rng.next() % live.len() as u64) as usize];
                world.step(tid);
                let census = spin_census(&mut world);
                assert!(
                    census.iter().all(|&c| c <= 1),
                    "multi-waiting under hand-over-hand: {census:?}"
                );
                steps += 1;
                assert!(steps < 2_000_000);
            }
        }
    }
}
