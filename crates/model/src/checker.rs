//! Property oracles for the paper's §3 theorems.
//!
//! - **Mutual exclusion** (Theorem 2) is checked *statelessly*: a thread is
//!   in the critical section for lock `l` iff it holds `l` and is not in
//!   `l`'s exit code (§3 splits entry code / CS / exit code / remainder —
//!   Hemlock's ack wait belongs to the exit code, after ownership moved).
//! - **FIFO** (Theorem 8) is path-dependent: we track the doorstep order
//!   per lock and require critical-section entries to pop that queue in
//!   order. The tracker state is hashed alongside the world so DFS pruning
//!   stays sound.
//! - **Fere-local spinning** (Theorem 10) is a census over pending
//!   operations: threads spinning on thread `u`'s Grant word must number at
//!   most the locks currently *associated* with `u` (doorstep executed,
//!   exit code not complete).

use hemlock_simlock::{Event, LockAlgorithm, World};
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};

/// A property violation found during exploration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Two threads in the critical section of one lock (Theorem 2 broken).
    MutualExclusion {
        /// The lock.
        lock: usize,
        /// Threads simultaneously inside.
        tids: Vec<usize>,
    },
    /// A thread entered the CS out of doorstep order (Theorem 8 broken).
    Fifo {
        /// The lock.
        lock: usize,
        /// Thread that should have entered next.
        expected: usize,
        /// Thread that actually entered.
        actual: usize,
    },
    /// More spinners on one word than its owner's associated locks
    /// (Theorem 10 broken).
    FereLocal {
        /// The spun-on word.
        loc: usize,
        /// Number of threads spinning there.
        spinners: usize,
        /// The theorem's bound at this instant.
        bound: usize,
    },
    /// A reachable state where no thread can make progress.
    Deadlock,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::MutualExclusion { lock, tids } => {
                write!(
                    f,
                    "mutual exclusion broken on lock {lock}: threads {tids:?} in CS"
                )
            }
            Violation::Fifo {
                lock,
                expected,
                actual,
            } => write!(
                f,
                "FIFO broken on lock {lock}: expected thread {expected}, got {actual}"
            ),
            Violation::FereLocal {
                loc,
                spinners,
                bound,
            } => write!(
                f,
                "fere-local spinning broken: {spinners} spinners on word {loc}, bound {bound}"
            ),
            Violation::Deadlock => write!(f, "deadlock: no thread can progress"),
        }
    }
}

/// Path-dependent FIFO tracker: doorstep order per lock.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FifoTracker {
    queues: Vec<VecDeque<usize>>,
}

impl FifoTracker {
    /// Tracker for `locks` locks.
    pub fn new(locks: usize) -> Self {
        Self {
            queues: vec![VecDeque::new(); locks],
        }
    }

    /// Feeds one event; returns a violation if FIFO order broke.
    pub fn on_event(&mut self, event: &Event) -> Option<Violation> {
        match *event {
            Event::Doorstep { tid, lock } => {
                self.queues[lock].push_back(tid);
                None
            }
            Event::Acquired { tid, lock } => match self.queues[lock].pop_front() {
                Some(expected) if expected == tid => None,
                Some(expected) => Some(Violation::Fifo {
                    lock,
                    expected,
                    actual: tid,
                }),
                None => Some(Violation::Fifo {
                    lock,
                    expected: usize::MAX,
                    actual: tid,
                }),
            },
            _ => None,
        }
    }

    /// Hashes the tracker state (joined with the world hash for DFS
    /// visited-set soundness).
    pub fn hash_into(&self, h: &mut impl Hasher) {
        for q in &self.queues {
            q.hash(h);
        }
    }
}

/// Stateless mutual-exclusion check over the current world state.
pub fn check_mutual_exclusion<A: LockAlgorithm>(
    world: &World<A>,
    locks: usize,
) -> Option<Violation> {
    for lock in 0..locks {
        let mut inside = Vec::new();
        for (tid, t) in world.threads.iter().enumerate() {
            if t.holding().contains(&lock) && t.releasing() != Some(lock) {
                inside.push(tid);
            }
        }
        if inside.len() > 1 {
            return Some(Violation::MutualExclusion { lock, tids: inside });
        }
    }
    None
}

/// Fere-local spinning census (Theorem 10 / the §2.2 multi-waiting degree):
/// for every thread `u` with a Grant word, the number of **other** threads
/// spinning on that word must not exceed the number of locks associated
/// with `u`.
///
/// Two refinements over a naive "who is polling" count, both implied by the
/// paper's definitions:
///
/// 1. A thread counts as spinning only while its busy-wait condition is
///    unsatisfied (§3's waiters are "waiting for L *to appear*"): once the
///    awaited value is published, the waiter's next poll exits the loop —
///    the Theorem 10 proof relies on exactly that hand-off ("when Ti starts
///    spinning on Selfi→Grant, another thread Tj stops spinning").
/// 2. Only *remote* spinners count — §2.2's bound is on "the worst-case
///    number of threads that could be busy-waiting on a given thread T's
///    Grant field", i.e. inter-thread interference. The owner's own
///    exit-code wait is not multi-waiting, and under the Overlap variant it
///    can legitimately outlive the lock association (the ack wait defers to
///    the next operation's prologue).
pub fn check_fere_local<A: LockAlgorithm>(world: &mut World<A>) -> Option<Violation> {
    let n = world.thread_count();
    for u in 0..n {
        let Some(grant) = world.algo.grant_word(u) else {
            continue;
        };
        let mut spinners = 0;
        for tid in 0..n {
            if tid == u || world.threads[tid].finished() {
                continue;
            }
            if let Some((_, hemlock_simlock::Meta::SpinWait { loc, until })) = world.peek(tid) {
                if loc == grant && !until.satisfied(world.mem[loc]) {
                    spinners += 1;
                }
            }
        }
        let bound = world.threads[u].associated().len();
        if spinners > bound {
            return Some(Violation::FereLocal {
                loc: grant,
                spinners,
                bound,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemlock_simlock::algos::{HemlockFlavor, HemlockSim};
    use hemlock_simlock::Program;

    #[test]
    fn fifo_tracker_accepts_in_order() {
        let mut t = FifoTracker::new(1);
        assert!(t.on_event(&Event::Doorstep { tid: 0, lock: 0 }).is_none());
        assert!(t.on_event(&Event::Doorstep { tid: 1, lock: 0 }).is_none());
        assert!(t.on_event(&Event::Acquired { tid: 0, lock: 0 }).is_none());
        assert!(t.on_event(&Event::Acquired { tid: 1, lock: 0 }).is_none());
    }

    #[test]
    fn fifo_tracker_rejects_out_of_order() {
        let mut t = FifoTracker::new(1);
        t.on_event(&Event::Doorstep { tid: 0, lock: 0 });
        t.on_event(&Event::Doorstep { tid: 1, lock: 0 });
        let v = t.on_event(&Event::Acquired { tid: 1, lock: 0 });
        assert_eq!(
            v,
            Some(Violation::Fifo {
                lock: 0,
                expected: 0,
                actual: 1
            })
        );
    }

    #[test]
    fn mutex_check_clean_on_fresh_world() {
        let algo = HemlockSim::new(2, 1, HemlockFlavor::Ctr);
        let w = World::new(
            algo,
            vec![
                Program::lock_unlock(0, 0, 0, 1),
                Program::lock_unlock(0, 0, 0, 1),
            ],
        );
        assert!(check_mutual_exclusion(&w, 1).is_none());
    }

    #[test]
    fn fere_local_census_clean_on_fresh_world() {
        let algo = HemlockSim::new(2, 1, HemlockFlavor::Ctr);
        let mut w = World::new(
            algo,
            vec![
                Program::lock_unlock(0, 0, 0, 1),
                Program::lock_unlock(0, 0, 0, 1),
            ],
        );
        assert!(check_fere_local(&mut w).is_none());
    }
}
