//! Bounded-exhaustive schedule exploration (DFS with state hashing).
//!
//! Every reachable interleaving of atomic operations is enumerated for small
//! configurations; at each state the §3 property oracles run. Because the
//! paper's algorithms busy-wait, the raw transition system is infinite in
//! time but finite in *state*: a failed poll leaves the state unchanged, so
//! the visited set collapses spin cycles.

use crate::checker::{check_fere_local, check_mutual_exclusion, FifoTracker, Violation};
use hemlock_simlock::{LockAlgorithm, World};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::Hasher;

/// Exploration limits and toggles. The lock count for the mutex/FIFO
/// oracles is derived from the world's algorithm
/// ([`LockAlgorithm::locks`]), not configured here.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Stop after visiting this many distinct states.
    pub max_states: usize,
    /// Also run the fere-local census at every state (costlier).
    pub check_fere_local: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        Self {
            max_states: 500_000,
            check_fere_local: true,
        }
    }
}

/// Result of an exploration run.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Distinct states visited.
    pub states: usize,
    /// Property violations found (empty = all checked states clean).
    pub violations: Vec<Violation>,
    /// True when the whole reachable space fit under `max_states`
    /// (i.e. the result is exhaustive, not a sample).
    pub exhaustive: bool,
    /// Number of fully-terminated states reached.
    pub terminal_states: usize,
}

impl ExploreReport {
    /// True when no violations were found.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

fn node_key<A: LockAlgorithm>(world: &World<A>, fifo: &FifoTracker) -> u64 {
    let mut h = DefaultHasher::new();
    h.write_u64(world.state_hash());
    fifo.hash_into(&mut h);
    h.finish()
}

/// Exhaustively explores all interleavings of `world` (up to the state cap),
/// checking mutual exclusion, FIFO, deadlock-freedom and (optionally) the
/// fere-local spinning bound at every reachable state.
pub fn explore<A>(world: World<A>, cfg: ExploreConfig) -> ExploreReport
where
    A: LockAlgorithm + Clone,
{
    let locks = world.algo.locks();
    let mut visited: HashSet<u64> = HashSet::new();
    let mut stack: Vec<(World<A>, FifoTracker)> = Vec::new();
    let mut report = ExploreReport {
        states: 0,
        violations: Vec::new(),
        exhaustive: true,
        terminal_states: 0,
    };

    let fifo0 = FifoTracker::new(locks);
    visited.insert(node_key(&world, &fifo0));
    stack.push((world, fifo0));

    while let Some((mut world, fifo)) = stack.pop() {
        report.states += 1;
        if report.states >= cfg.max_states {
            report.exhaustive = false;
            break;
        }

        if let Some(v) = check_mutual_exclusion(&world, locks) {
            report.violations.push(v);
            continue;
        }
        if cfg.check_fere_local {
            if let Some(v) = check_fere_local(&mut world) {
                report.violations.push(v);
                continue;
            }
        }

        if world.all_finished() {
            report.terminal_states += 1;
            continue;
        }

        let n = world.thread_count();
        let here = node_key(&world, &fifo);
        let mut any_progress = false;
        for tid in 0..n {
            if world.threads[tid].finished() {
                continue;
            }
            let mut next = world.clone();
            let mut next_fifo = fifo.clone();
            let out = next.step(tid);
            for e in &out.events {
                if let Some(v) = next_fifo.on_event(e) {
                    report.violations.push(v);
                }
            }
            let key = node_key(&next, &next_fifo);
            if key != here {
                any_progress = true;
            }
            if visited.insert(key) {
                stack.push((next, next_fifo));
            }
        }
        if !any_progress {
            // Every enabled thread's step leaves the state unchanged:
            // nobody can ever make progress from here.
            report.violations.push(Violation::Deadlock);
        }
    }
    report
}

/// Checks termination (lockout-freedom under a fair schedule, the bounded
/// form of Theorem 6): the world must finish under round-robin and under
/// `seeds` random fair schedules within `max_steps`.
pub fn check_progress<A>(make_world: impl Fn() -> World<A>, seeds: u64, max_steps: u64) -> bool
where
    A: LockAlgorithm,
{
    if make_world().run_round_robin(max_steps).is_none() {
        return false;
    }
    for seed in 0..seeds {
        if make_world().run_random(seed, max_steps).is_none() {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemlock_simlock::algos::{ClhSim, HemlockFlavor, HemlockSim, McsSim, TicketSim};
    use hemlock_simlock::Program;

    fn two_thread_world<A: LockAlgorithm>(algo: A, rounds: u32) -> World<A> {
        World::new(
            algo,
            vec![
                Program::lock_unlock(0, 0, 0, rounds),
                Program::lock_unlock(0, 0, 0, rounds),
            ],
        )
    }

    #[test]
    fn hemlock_ctr_two_threads_exhaustive() {
        let report = explore(
            two_thread_world(HemlockSim::new(2, 1, HemlockFlavor::Ctr), 2),
            ExploreConfig::default(),
        );
        assert!(report.clean(), "violations: {:?}", report.violations);
        assert!(report.exhaustive);
        assert!(
            report.states > 50,
            "trivially small space: {}",
            report.states
        );
        assert!(report.terminal_states >= 1);
    }

    #[test]
    fn hemlock_naive_two_threads_exhaustive() {
        let report = explore(
            two_thread_world(HemlockSim::new(2, 1, HemlockFlavor::Naive), 2),
            ExploreConfig::default(),
        );
        assert!(report.clean(), "violations: {:?}", report.violations);
        assert!(report.exhaustive);
    }

    #[test]
    fn baselines_two_threads_exhaustive() {
        for report in [
            explore(
                two_thread_world(TicketSim::new(2, 1), 2),
                ExploreConfig::default(),
            ),
            explore(
                two_thread_world(McsSim::new(2, 1), 2),
                ExploreConfig::default(),
            ),
            explore(
                two_thread_world(ClhSim::new(2, 1), 2),
                ExploreConfig::default(),
            ),
        ] {
            assert!(report.clean(), "violations: {:?}", report.violations);
            assert!(report.exhaustive);
        }
    }

    #[test]
    fn progress_under_fair_schedules() {
        assert!(check_progress(
            || two_thread_world(HemlockSim::new(2, 1, HemlockFlavor::Ctr), 5),
            10,
            1_000_000,
        ));
    }

    // Sanity fixture for the checker itself: a "lock" that admits everyone
    // after a single probing load, so the mutual-exclusion oracle must trip.
    #[derive(Clone, Debug)]
    struct BrokenSim {
        threads: usize,
    }
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct BrokenThread {
        pc: u8,
        lock: usize,
    }
    impl LockAlgorithm for BrokenSim {
        type Thread = BrokenThread;
        fn name(&self) -> &'static str {
            "Broken"
        }
        fn words(&self) -> usize {
            2 + 1 + self.threads // null, fake tail, data, privates
        }
        fn locks(&self) -> usize {
            1
        }
        fn initial_memory(&self) -> Vec<hemlock_simlock::Val> {
            vec![0; self.words()]
        }
        fn new_thread(&self, _tid: usize) -> BrokenThread {
            BrokenThread { pc: 0, lock: 0 }
        }
        fn begin_acquire(&self, t: &mut BrokenThread, lock: usize) {
            t.lock = lock;
            t.pc = 1;
        }
        fn begin_release(&self, t: &mut BrokenThread, lock: usize) {
            t.lock = lock;
            t.pc = 3;
        }
        fn step(
            &self,
            t: &mut BrokenThread,
            _last: hemlock_simlock::Val,
        ) -> hemlock_simlock::AlgoStep {
            use hemlock_simlock::{AlgoStep, Meta, Op};
            match t.pc {
                1 => {
                    t.pc = 2;
                    // Probe the "lock word" but ignore the answer.
                    AlgoStep::Issue(Op::Load(1), Meta::Doorstep { lock: t.lock })
                }
                2 | 4 => {
                    t.pc = 0;
                    AlgoStep::Done
                }
                3 => {
                    t.pc = 4;
                    AlgoStep::Issue(Op::Store(1, 0), Meta::None)
                }
                _ => unreachable!(),
            }
        }
        fn data_word(&self, _lock: usize) -> usize {
            2
        }
        fn private_word(&self, tid: usize) -> usize {
            3 + tid
        }
    }

    fn broken_world(threads: usize, cs_steps: u32) -> World<BrokenSim> {
        let program = Program::new(
            vec![
                hemlock_simlock::Action::Acquire(0),
                hemlock_simlock::Action::CsWork {
                    lock: 0,
                    steps: cs_steps,
                },
                hemlock_simlock::Action::Release(0),
            ],
            1,
        );
        World::new(BrokenSim { threads }, vec![program; threads])
    }

    #[test]
    fn broken_algorithm_is_caught() {
        let report = explore(
            broken_world(2, 2),
            ExploreConfig {
                check_fere_local: false,
                ..Default::default()
            },
        );
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::MutualExclusion { .. })),
            "broken lock must be caught; got {:?}",
            report.violations
        );
    }

    #[test]
    fn state_budget_exhaustion_clears_exhaustive_flag() {
        // A clean world cut off mid-exploration must not claim exhaustive
        // coverage: `clean()` alone is a sample, not a proof.
        let full = explore(
            two_thread_world(HemlockSim::new(2, 1, HemlockFlavor::Ctr), 2),
            ExploreConfig::default(),
        );
        assert!(full.exhaustive && full.states > 20);
        let cut = explore(
            two_thread_world(HemlockSim::new(2, 1, HemlockFlavor::Ctr), 2),
            ExploreConfig {
                max_states: 20,
                ..Default::default()
            },
        );
        assert!(
            !cut.exhaustive,
            "tiny budget cannot cover {} states",
            full.states
        );
        assert!(cut.states <= 20);
        assert!(cut.clean(), "cutoff alone is not a violation");
    }

    #[test]
    fn violations_found_before_cutoff_survive_budget_exhaustion() {
        // The broken lock trips mutual exclusion within the first few
        // explored states; a budget too small for the full space must
        // still report what it saw before the cutoff.
        let full = explore(
            broken_world(3, 3),
            ExploreConfig {
                check_fere_local: false,
                ..Default::default()
            },
        );
        assert!(full.exhaustive && !full.clean());
        let budget = full.states / 2;
        let cut = explore(
            broken_world(3, 3),
            ExploreConfig {
                max_states: budget,
                check_fere_local: false,
            },
        );
        assert!(
            !cut.exhaustive,
            "budget {budget} must truncate {}",
            full.states
        );
        assert!(
            cut.violations
                .iter()
                .any(|v| matches!(v, Violation::MutualExclusion { .. })),
            "violations found before the cutoff must be reported; got {:?}",
            cut.violations
        );
        assert!(!cut.clean());
    }
}
