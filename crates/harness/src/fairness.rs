//! Fairness measurement.
//!
//! §4: TAS/TTAS locks "fail to scale and may allow unfairness and even
//! indefinite starvation", while Ticket/MCS/CLH/Hemlock are FIFO. This
//! harness quantifies that: under sustained contention, it collects each
//! thread's completed-iteration count and per-acquisition latency
//! distribution, reporting Jain's fairness index and the tail/median
//! latency ratio.

use crate::histogram::Histogram;
use crate::measure::Throughput;
use core::sync::atomic::{AtomicBool, Ordering};
use hemlock_core::raw::RawLock;
use std::sync::Mutex as StdMutex;
use std::time::{Duration, Instant};

/// Result of a fairness run.
#[derive(Clone, Debug)]
pub struct FairnessReport {
    /// Per-thread completed iterations.
    pub per_thread_ops: Vec<u64>,
    /// Merged acquisition-latency histogram (nanoseconds).
    pub latency: Histogram,
    /// Aggregate throughput.
    pub throughput: Throughput,
}

impl FairnessReport {
    /// Jain's fairness index over per-thread throughput:
    /// `(Σx)² / (n · Σx²)`; 1.0 = perfectly fair, 1/n = one thread hogs.
    pub fn jain_index(&self) -> f64 {
        let n = self.per_thread_ops.len() as f64;
        let sum: f64 = self.per_thread_ops.iter().map(|&x| x as f64).sum();
        let sumsq: f64 = self
            .per_thread_ops
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum();
        if sumsq == 0.0 {
            return 0.0;
        }
        sum * sum / (n * sumsq)
    }

    /// p99 / p50 acquisition-latency ratio (tail blowup).
    pub fn tail_ratio(&self) -> f64 {
        let p50 = self.latency.quantile(0.50).max(1);
        self.latency.quantile(0.99) as f64 / p50 as f64
    }

    /// Max/min per-thread ops ratio (∞-unfairness witness; capped).
    pub fn max_min_ratio(&self) -> f64 {
        let max = *self.per_thread_ops.iter().max().unwrap_or(&0) as f64;
        let min = *self.per_thread_ops.iter().min().unwrap_or(&0) as f64;
        if min == 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }
}

/// Runs `threads` threads hammering one lock for `duration`, recording
/// per-thread progress and per-acquisition latency.
pub fn fairness_bench<L: RawLock>(threads: usize, duration: Duration) -> FairnessReport {
    let lock = L::default();
    let stop = AtomicBool::new(false);
    let results: StdMutex<Vec<(usize, u64, Histogram)>> = StdMutex::new(Vec::new());

    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let lock = &lock;
            let stop = &stop;
            let results = &results;
            s.spawn(move || {
                let mut ops = 0u64;
                let mut hist = Histogram::new();
                while !stop.load(Ordering::Relaxed) {
                    let t0 = Instant::now();
                    lock.lock();
                    let wait_ns = t0.elapsed().as_nanos() as u64;
                    // Safety: acquired above on this thread.
                    unsafe { lock.unlock() };
                    hist.record(wait_ns.max(1));
                    ops += 1;
                }
                results.lock().unwrap().push((t, ops, hist));
            });
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::Release);
    });
    let elapsed = start.elapsed();

    let mut rows = results.into_inner().unwrap();
    rows.sort_by_key(|(t, _, _)| *t);
    let per_thread_ops: Vec<u64> = rows.iter().map(|(_, ops, _)| *ops).collect();
    let mut latency = Histogram::new();
    for (_, _, h) in &rows {
        latency.merge(h);
    }
    let ops = per_thread_ops.iter().sum();
    FairnessReport {
        per_thread_ops,
        latency,
        throughput: Throughput { ops, elapsed },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemlock_core::hemlock::Hemlock;
    use hemlock_locks::TicketLock;

    /// Runs a load-sensitive check up to 3 times: when the test binary
    /// itself oversubscribes the box, a thread spawn can miss the whole
    /// measurement window. Any clean attempt passes.
    fn with_retries(mut attempt: impl FnMut() -> Result<(), String>) {
        let mut last = String::new();
        for _ in 0..3 {
            match attempt() {
                Ok(()) => return,
                Err(e) => last = e,
            }
        }
        panic!("all attempts failed: {last}");
    }

    #[test]
    fn fifo_locks_are_fair() {
        with_retries(|| {
            let r = fairness_bench::<Hemlock>(3, Duration::from_millis(250));
            assert_eq!(r.per_thread_ops.len(), 3);
            if r.throughput.ops <= 100 {
                return Err(format!("too few ops: {}", r.throughput.ops));
            }
            if r.jain_index() <= 0.60 {
                return Err(format!(
                    "FIFO lock should be near-fair: {} ({:?})",
                    r.jain_index(),
                    r.per_thread_ops
                ));
            }
            Ok(())
        });
    }

    #[test]
    fn ticket_starves_nobody() {
        // On an oversubscribed box, short-window Jain for global-spinning
        // locks is scheduler noise; the robust FIFO property is that every
        // thread makes progress (no starvation).
        with_retries(|| {
            let r = fairness_bench::<TicketLock>(3, Duration::from_millis(250));
            if !r.per_thread_ops.iter().all(|&ops| ops > 0) {
                return Err(format!(
                    "a FIFO lock must not starve any thread: {:?}",
                    r.per_thread_ops
                ));
            }
            if r.jain_index() <= 1.2 / 3.0 {
                return Err(format!("{:?}", r.per_thread_ops));
            }
            Ok(())
        });
    }

    #[test]
    fn report_math() {
        let r = FairnessReport {
            per_thread_ops: vec![100, 100, 100],
            latency: Histogram::new(),
            throughput: Throughput {
                ops: 300,
                elapsed: Duration::from_secs(1),
            },
        };
        assert!((r.jain_index() - 1.0).abs() < 1e-9);
        assert_eq!(r.max_min_ratio(), 1.0);

        let skewed = FairnessReport {
            per_thread_ops: vec![300, 0, 0],
            latency: Histogram::new(),
            throughput: Throughput {
                ops: 300,
                elapsed: Duration::from_secs(1),
            },
        };
        assert!((skewed.jain_index() - 1.0 / 3.0).abs() < 1e-9);
        assert!(skewed.max_min_ratio().is_infinite());
    }
}
