//! A tiny tick-based readiness reactor for std-only nonblocking I/O.
//!
//! The workspace is offline and dependency-free, so the networked layer
//! (`hemlock-net`) cannot lean on `mio`/epoll bindings. What it *can* do
//! with `std` alone is put sockets in nonblocking mode and attempt I/O
//! from a task; the missing piece is "park this task until the socket
//! might be ready". This module supplies that piece in the same shape as
//! [`hemlock_core::wakerset::WakerSet`]: a registry of parked wakers plus
//! a notifier — except the notifier here is a **driver thread ticking a
//! clock**, because without epoll there is no kernel edge to subscribe
//! to.
//!
//! The protocol, from a task's `poll`:
//!
//! 1. attempt the nonblocking syscall (`read`/`write`/`accept`);
//! 2. on `WouldBlock`, [`Reactor::register`] the waker and return
//!    `Pending`;
//! 3. the driver wakes every registered waker each tick; the task
//!    re-attempts, and either progresses or re-registers.
//!
//! Unlike the lock-side `WakerSet`, no Dekker fence pair is needed: the
//! wakeup source is time, not a racing releaser, so a registration can
//! never be "missed" — at worst it waits one tick. The driver parks on a
//! condvar while no waker is registered, so an idle reactor costs zero
//! CPU; under load the tick bounds added latency at `tick` (default
//! 50 µs) per blocked attempt, a deliberate trade of worst-case latency
//! for portability. Ready sockets never touch the reactor at all — a
//! task whose bytes are already buffered stays on the executor's fast
//! path.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::Waker;
use std::time::Duration;

/// Default tick: a compromise between busy-polling (latency) and wasted
/// wakeups (CPU). See the module docs.
pub const DEFAULT_TICK: Duration = Duration::from_micros(50);

struct Shared {
    wakers: Mutex<Vec<Waker>>,
    /// Signals the driver out of its idle park when the first waker
    /// registers (or shutdown is requested).
    arrived: Condvar,
    shutdown: AtomicBool,
}

/// The readiness reactor: a waker registry plus its driver thread.
///
/// Dropping the reactor stops the driver and wakes everything still
/// registered (so parked tasks can observe their own shutdown flags
/// rather than sleeping forever).
pub struct Reactor {
    shared: Arc<Shared>,
    tick: Duration,
    driver: Option<std::thread::JoinHandle<()>>,
}

impl Reactor {
    /// Starts a reactor with the [`DEFAULT_TICK`].
    pub fn new() -> Self {
        Self::with_tick(DEFAULT_TICK)
    }

    /// Starts a reactor waking registered tasks every `tick` while any
    /// are parked.
    pub fn with_tick(tick: Duration) -> Self {
        let shared = Arc::new(Shared {
            wakers: Mutex::new(Vec::new()),
            arrived: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let driver = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("hemlock-reactor".to_string())
                .spawn(move || driver_loop(&shared, tick))
                .expect("spawn reactor driver")
        };
        Self {
            shared,
            tick,
            driver: Some(driver),
        }
    }

    /// Registers `waker` for the next tick. Call **after** a nonblocking
    /// attempt returned `WouldBlock`; the caller will be woken within one
    /// tick and must re-attempt (a wake is a hint, not a readiness
    /// guarantee).
    pub fn register(&self, waker: &Waker) {
        let mut g = self.shared.wakers.lock().expect("reactor wakers");
        let was_empty = g.is_empty();
        g.push(waker.clone());
        drop(g);
        if was_empty {
            // First parker: lift the driver out of its idle park.
            self.shared.arrived.notify_one();
        }
    }

    /// Number of currently parked wakers (diagnostics; racy).
    pub fn parked(&self) -> usize {
        self.shared.wakers.lock().expect("reactor wakers").len()
    }

    /// The configured tick.
    pub fn tick(&self) -> Duration {
        self.tick
    }
}

impl Default for Reactor {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            // Notify under the mutex: the driver holds it from its loop top
            // until it enters a condvar wait, so this notification cannot
            // land in the gap between its shutdown check and the wait (a
            // lost notify here would stall this join for a full tick).
            let _g = self.shared.wakers.lock().expect("reactor wakers");
            self.shared.arrived.notify_all();
        }
        if let Some(d) = self.driver.take() {
            let _ = d.join();
        }
        // Anything still parked gets one final wake so its task can run
        // to a shutdown check instead of leaking.
        let drained: Vec<Waker> = {
            let mut g = self.shared.wakers.lock().expect("reactor wakers");
            core::mem::take(&mut *g)
        };
        for w in drained {
            w.wake();
        }
    }
}

fn driver_loop(shared: &Shared, tick: Duration) {
    loop {
        // Idle-park until at least one waker is registered. The mutex is
        // held from here until a condvar wait begins, so a shutdown
        // notification (sent under the same mutex) is never lost.
        let mut g = shared.wakers.lock().expect("reactor wakers");
        while g.is_empty() {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            g = shared.arrived.wait(g).expect("reactor wakers");
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // One tick of latency — as an interruptible wait, not a bare
        // sleep, so Drop's shutdown notification cuts it short instead of
        // stalling the join for a full tick (with a long tick, forever in
        // practice). The condvar releases the mutex while waiting, so
        // register() never blocks on the driver.
        let (mut g, _) = shared
            .arrived
            .wait_timeout(g, tick)
            .expect("reactor wakers");
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Wake everyone outside the lock (waker code schedules tasks and
        // may take executor locks).
        let drained: Vec<Waker> = core::mem::take(&mut *g);
        drop(g);
        for w in drained {
            w.wake();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::task::Wake;

    struct Counting(AtomicUsize);
    impl Wake for Counting {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn registered_waker_fires_within_a_tick_or_two() {
        let reactor = Reactor::with_tick(Duration::from_micros(100));
        let flag = Arc::new(Counting(AtomicUsize::new(0)));
        reactor.register(&Waker::from(Arc::clone(&flag)));
        let t0 = std::time::Instant::now();
        while flag.0.load(Ordering::SeqCst) == 0 {
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "reactor never ticked"
            );
            std::thread::yield_now();
        }
        assert_eq!(reactor.parked(), 0, "tick must drain the registry");
    }

    #[test]
    fn re_registration_gets_a_fresh_tick() {
        let reactor = Reactor::with_tick(Duration::from_micros(100));
        let flag = Arc::new(Counting(AtomicUsize::new(0)));
        for expected in 1..=3 {
            reactor.register(&Waker::from(Arc::clone(&flag)));
            let t0 = std::time::Instant::now();
            while flag.0.load(Ordering::SeqCst) < expected {
                assert!(t0.elapsed() < Duration::from_secs(5));
                std::thread::yield_now();
            }
        }
    }

    #[test]
    fn drop_wakes_leftover_registrations() {
        let reactor = Reactor::with_tick(Duration::from_secs(3600)); // never ticks
        let flag = Arc::new(Counting(AtomicUsize::new(0)));
        reactor.register(&Waker::from(Arc::clone(&flag)));
        drop(reactor);
        assert_eq!(
            flag.0.load(Ordering::SeqCst),
            1,
            "drop must fire the final wake"
        );
    }

    #[test]
    fn idle_reactor_spins_nothing() {
        // No registration: the driver must be parked, not ticking. This is
        // only observable as "drop returns promptly" (a busy loop would
        // still return, so the real assertion is the condvar park above —
        // but a hang here would time the suite out).
        let reactor = Reactor::new();
        assert_eq!(reactor.parked(), 0);
        drop(reactor);
    }

    #[test]
    fn drives_a_real_future_on_the_executor() {
        use crate::executor::TaskPool;
        // A future that needs N reactor ticks to complete — the same shape
        // as a nonblocking read that keeps returning WouldBlock.
        let reactor = Arc::new(Reactor::with_tick(Duration::from_micros(100)));
        let pool = TaskPool::new(2);
        let r = Arc::clone(&reactor);
        let h = pool.spawn(async move {
            let mut remaining = 5u32;
            std::future::poll_fn(move |cx| {
                if remaining == 0 {
                    return std::task::Poll::Ready(42u32);
                }
                remaining -= 1;
                r.register(cx.waker());
                std::task::Poll::Pending
            })
            .await
        });
        assert_eq!(h.join(), 42);
    }
}
