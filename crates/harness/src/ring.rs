//! The §5.5 token-ring microbenchmark, on real hardware.
//!
//! "A set of concurrent threads are configured in a ring, and circulate a
//! single token. A thread waits for its mailbox to become non-zero, clears
//! the mailbox, and deposits the token in its successor's mailbox. Using
//! CAS, SWAP or Fetch-and-Add to busy-wait improves the circulation rate as
//! compared to the naive form which uses loads."
//!
//! The companion simulation lives in `hemlock-coherence::ring`, which
//! counts the offcore events this version can only measure indirectly
//! through throughput.

use crate::measure::Throughput;
use core::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use hemlock_core::pad::CachePadded;
use hemlock_core::spin::SpinWait;
use std::time::{Duration, Instant};

/// Busy-wait primitive used on the mailbox.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RingWait {
    /// Plain loads; separate store to clear (the naive form).
    Load,
    /// `CAS(token → 0)`: observe and clear in one RMW (the CTR pattern).
    Cas,
    /// `SWAP(0)`: unconditional exchange until it yields the token.
    Swap,
    /// `FAA(0)` read-for-ownership; then a plain store to clear.
    Faa,
}

impl RingWait {
    /// All modes in reporting order.
    pub const ALL: [RingWait; 4] = [RingWait::Load, RingWait::Cas, RingWait::Swap, RingWait::Faa];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            RingWait::Load => "Load",
            RingWait::Cas => "CAS",
            RingWait::Swap => "SWAP",
            RingWait::Faa => "FAA",
        }
    }
}

const TOKEN: u64 = 1;

/// Waits until the mailbox holds the token and clears it, using `mode`.
/// Returns false if `stop` was raised while waiting.
fn take_token(mailbox: &AtomicU64, mode: RingWait, stop: &AtomicBool) -> bool {
    let mut spin = SpinWait::new();
    loop {
        let taken = match mode {
            RingWait::Load => {
                if mailbox.load(Ordering::Acquire) == TOKEN {
                    mailbox.store(0, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
            RingWait::Cas => mailbox
                .compare_exchange_weak(TOKEN, 0, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok(),
            RingWait::Swap => mailbox.swap(0, Ordering::AcqRel) == TOKEN,
            RingWait::Faa => {
                if mailbox.fetch_add(0, Ordering::AcqRel) == TOKEN {
                    mailbox.store(0, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
        };
        if taken {
            return true;
        }
        if stop.load(Ordering::Relaxed) {
            return false;
        }
        spin.wait();
    }
}

/// Circulates the token for `duration`; `ops` counts completed laps.
pub fn ring_bench(threads: usize, duration: Duration, mode: RingWait) -> Throughput {
    assert!(threads >= 2);
    let mailboxes: Vec<CachePadded<AtomicU64>> = (0..threads)
        .map(|_| CachePadded::new(AtomicU64::new(0)))
        .collect();
    let stop = AtomicBool::new(false);
    let laps = AtomicU64::new(0);

    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let mailboxes = &mailboxes;
            let stop = &stop;
            let laps = &laps;
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    if !take_token(&mailboxes[t], mode, stop) {
                        return;
                    }
                    if t == 0 {
                        laps.fetch_add(1, Ordering::Relaxed);
                    }
                    mailboxes[(t + 1) % mailboxes.len()].store(TOKEN, Ordering::Release);
                }
            });
        }
        // Inject the token to start circulation.
        mailboxes[0].store(TOKEN, Ordering::Release);
        std::thread::sleep(duration);
        stop.store(true, Ordering::Release);
    });
    let elapsed = start.elapsed();

    Throughput {
        ops: laps.load(Ordering::Relaxed),
        elapsed,
    }
}

/// Lock-mediated ring circulation: the token is a shared counter behind a
/// runtime-selected lock ([`hemlock_core::DynMutex`]), and thread *t* may
/// only advance it
/// when `token % threads == t`. Every advance is an ownership hand-over
/// through the lock, so circulations/sec measures contended pass-the-baton
/// cost for whichever algorithm the catalog resolved — the dynamic-layer
/// analog of swapping `LD_PRELOAD` libraries under the §5.5 benchmark.
pub fn dyn_ring_bench(
    lock: Box<dyn hemlock_core::DynLock>,
    threads: usize,
    duration: Duration,
) -> Throughput {
    assert!(threads >= 2);
    let token = hemlock_core::DynMutex::new(lock, 0u64);
    let stop = AtomicBool::new(false);
    let laps = AtomicU64::new(0);

    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let token = &token;
            let stop = &stop;
            let laps = &laps;
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let mut g = token.lock();
                    if *g % threads as u64 == t as u64 {
                        *g += 1;
                        if t == 0 {
                            laps.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    drop(g);
                }
            });
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::Release);
    });
    let elapsed = start.elapsed();

    Throughput {
        ops: laps.load(Ordering::Relaxed),
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_circulates_in_all_modes() {
        for mode in RingWait::ALL {
            let t = ring_bench(2, Duration::from_millis(60), mode);
            assert!(t.ops > 10, "{:?}: only {} laps", mode, t.ops);
        }
    }

    #[test]
    fn larger_ring_still_circulates() {
        let t = ring_bench(4, Duration::from_millis(60), RingWait::Cas);
        assert!(t.ops > 5);
    }

    #[test]
    fn dyn_ring_circulates_through_a_runtime_lock() {
        use hemlock_core::dynlock::boxed_try;
        use hemlock_core::hemlock::Hemlock;
        let t = dyn_ring_bench(boxed_try::<Hemlock>(), 2, Duration::from_millis(100));
        assert!(t.ops > 0, "token never circulated");
    }
}
