//! Seeded Zipfian key-distribution generator.
//!
//! Service-shaped KV workloads are skewed: a few keys take most of the
//! traffic. The standard way to model that (YCSB, and the method it took
//! from Gray et al., "Quickly Generating Billion-Record Synthetic
//! Databases", SIGMOD '94) is a Zipfian distribution over `[0, n)` with
//! skew parameter `theta`: key rank `k` is drawn with probability
//! proportional to `1 / (k+1)^theta`.
//!
//! The sampler here is the **rejection-free inversion** form: the zeta
//! normalization constants are precomputed once in [`Zipf::new`] (one
//! `O(n)` pass), after which every [`Zipf::sample`] is a handful of
//! floating-point operations on one uniform draw — no retry loop, so the
//! per-op cost is flat regardless of skew. Randomness comes from the
//! caller's [`Mt19937`], keeping workloads seeded and reproducible across
//! `loadgen` / `shardkv` runs.
//!
//! `theta = 0` degenerates to the uniform distribution; `theta -> 1`
//! concentrates mass on the head (YCSB's default is `0.99`). Values
//! `>= 1` are rejected — the textbook constants are only defined for
//! `theta` in `[0, 1)`.

use crate::mt19937::Mt19937;

/// A precomputed Zipfian sampler over the key space `[0, n)`.
///
/// ```
/// use hemlock_harness::{Mt19937, Zipf};
///
/// let zipf = Zipf::new(1_000, 0.99).unwrap();
/// let mut rng = Mt19937::new(42);
/// let key = zipf.sample(&mut rng);
/// assert!(key < 1_000);
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    /// `1 / (1 - theta)` — the inversion exponent.
    alpha: f64,
    /// `zeta(n, theta)` — the full normalization constant.
    zetan: f64,
    /// Gray et al.'s `eta` interpolation constant.
    eta: f64,
    /// `1 + 0.5^theta` — the precomputed rank-1 threshold.
    half_pow_theta: f64,
}

impl Zipf {
    /// Precomputes a sampler for `n` keys with skew `theta` in `[0, 1)`.
    ///
    /// Errors (instead of producing NaN keys) on `n == 0` or a `theta`
    /// outside the supported range — the messages are CLI-ready, so
    /// `loadgen`/`shardkv` surface them verbatim for a bad `--zipf`.
    pub fn new(n: u64, theta: f64) -> Result<Self, String> {
        if n == 0 {
            return Err("zipf: key-space size must be positive".to_string());
        }
        if !theta.is_finite() || !(0.0..1.0).contains(&theta) {
            return Err(format!(
                "zipf: skew theta must be in [0, 1), got {theta} \
                 (0 = uniform, 0.99 = YCSB default)"
            ));
        }
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        let nf = n as f64;
        Ok(Self {
            n,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / nf).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
            half_pow_theta: 1.0 + 0.5f64.powf(theta),
        })
    }

    /// Number of keys in the sampled space.
    pub fn keys(&self) -> u64 {
        self.n
    }

    /// Draws one key in `[0, n)`; rank 0 is the hottest key.
    #[inline]
    pub fn sample(&self, rng: &mut Mt19937) -> u64 {
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < self.half_pow_theta {
            return 1.min(self.n - 1);
        }
        let k = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        k.min(self.n - 1)
    }
}

/// `zeta(n, theta) = sum_{i=1..n} 1 / i^theta`.
fn zeta(n: u64, theta: f64) -> f64 {
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn head_fraction(theta: f64, n: u64, head: u64, draws: u32) -> f64 {
        let zipf = Zipf::new(n, theta).unwrap();
        let mut rng = Mt19937::new(0xD1CE);
        let hits = (0..draws).filter(|_| zipf.sample(&mut rng) < head).count();
        hits as f64 / draws as f64
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Zipf::new(0, 0.5).is_err());
        for theta in [-0.1, 1.0, 1.5, f64::NAN, f64::INFINITY] {
            let e = Zipf::new(10, theta).unwrap_err();
            assert!(e.contains("theta"), "{e}");
        }
    }

    #[test]
    fn samples_stay_in_range() {
        for theta in [0.0, 0.5, 0.99] {
            for n in [1u64, 2, 7, 1_000] {
                let zipf = Zipf::new(n, theta).unwrap();
                let mut rng = Mt19937::new(7);
                for _ in 0..2_000 {
                    assert!(zipf.sample(&mut rng) < n, "theta={theta} n={n}");
                }
            }
        }
    }

    #[test]
    fn equal_seeds_reproduce_the_stream() {
        let zipf = Zipf::new(4_096, 0.9).unwrap();
        let (mut a, mut b) = (Mt19937::new(99), Mt19937::new(99));
        for _ in 0..500 {
            assert_eq!(zipf.sample(&mut a), zipf.sample(&mut b));
        }
    }

    #[test]
    fn skew_is_monotone_in_theta() {
        // The defining property: raising theta concentrates more mass on
        // the head of the key space. Measured over the hottest 1% of keys.
        let n = 10_000;
        let head = n / 100;
        let fractions: Vec<f64> = [0.0, 0.5, 0.8, 0.99]
            .iter()
            .map(|&theta| head_fraction(theta, n, head, 60_000))
            .collect();
        for w in fractions.windows(2) {
            assert!(w[1] > w[0], "head mass must grow with theta: {fractions:?}");
        }
        // And the endpoints behave: theta=0 is uniform (head ~ 1%),
        // theta=0.99 is YCSB-hot (head well past a third of the traffic).
        assert!((fractions[0] - 0.01).abs() < 0.005, "{fractions:?}");
        assert!(fractions[3] > 0.35, "{fractions:?}");
    }

    #[test]
    fn rank_zero_is_the_hottest_key() {
        let zipf = Zipf::new(1_000, 0.99).unwrap();
        let mut rng = Mt19937::new(3);
        let mut counts = vec![0u32; 1_000];
        for _ in 0..50_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        let max = counts.iter().copied().max().unwrap();
        assert_eq!(counts[0], max, "rank 0 must take the most traffic");
        // Within the head, popularity decays with rank.
        assert!(counts[0] > counts[10] && counts[10] > counts[500]);
    }

    #[test]
    fn single_key_space_always_returns_zero() {
        let zipf = Zipf::new(1, 0.99).unwrap();
        let mut rng = Mt19937::new(1);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }
}
