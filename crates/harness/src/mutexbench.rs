//! The MutexBench benchmark (§5.1).
//!
//! "MutexBench spawns T concurrent threads. Each thread loops as follows:
//! acquire a central lock L; execute a critical section; release L; execute
//! a non-critical section. At the end of a fixed measurement interval the
//! benchmark reports the total number of aggregate iterations completed by
//! all the threads."
//!
//! Two contention regimes, matching Figures 2–7:
//!
//! - **Maximum**: empty critical and non-critical sections ("subjecting the
//!   lock to extreme contention. At just one thread, this configuration
//!   also constitutes a useful benchmark for uncontended latency").
//! - **Moderate**: "the non-critical section generates a uniformly
//!   distributed random value in [0, 400) and steps a thread-local
//!   std::mt19937 PRNG that many steps [...] The critical section advances
//!   a shared random number generator 5 steps."

use crate::measure::Throughput;
use crate::mt19937::Mt19937;
use core::cell::UnsafeCell;
use core::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use hemlock_core::pad::CachePadded;
use hemlock_core::raw::RawLock;
use std::time::{Duration, Instant};

/// Contention regime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Contention {
    /// Empty critical and non-critical sections (Figures 2, 4, 6).
    Maximum,
    /// PRNG-stepping sections (Figures 3, 5, 7).
    Moderate,
}

/// Benchmark configuration.
#[derive(Clone, Copy, Debug)]
pub struct MutexBenchConfig {
    /// Concurrent threads contending for the central lock.
    pub threads: usize,
    /// Measurement interval (the paper uses 10 s; scale down for CI).
    pub duration: Duration,
    /// Contention regime.
    pub contention: Contention,
}

/// Critical-section state: the shared PRNG advanced under the lock.
struct SharedSection<L: RawLock> {
    lock: L,
    rng: UnsafeCell<Mt19937>,
}

// Safety: `rng` is only touched while holding `lock`.
unsafe impl<L: RawLock> Sync for SharedSection<L> {}

/// Runs MutexBench with lock algorithm `L`; returns aggregate throughput.
pub fn mutex_bench<L: RawLock>(cfg: MutexBenchConfig) -> Throughput {
    let shared = SharedSection {
        lock: L::default(),
        rng: UnsafeCell::new(Mt19937::new(42)),
    };
    let stop = AtomicBool::new(false);
    let counters: Vec<CachePadded<AtomicU64>> = (0..cfg.threads)
        .map(|_| CachePadded::new(AtomicU64::new(0)))
        .collect();

    let start = Instant::now();
    std::thread::scope(|s| {
        for (t, counter) in counters.iter().enumerate() {
            let shared = &shared;
            let stop = &stop;
            s.spawn(move || {
                let mut local = Mt19937::new(0x5EED ^ (t as u32 + 1));
                let mut iters = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    shared.lock.lock();
                    if cfg.contention == Contention::Moderate {
                        // Safety: rng is protected by the central lock.
                        let rng = unsafe { &mut *shared.rng.get() };
                        for _ in 0..5 {
                            rng.next_u32();
                        }
                    }
                    // Safety: this thread holds the lock.
                    unsafe { shared.lock.unlock() };
                    if cfg.contention == Contention::Moderate {
                        let steps = local.below(400);
                        for _ in 0..steps {
                            local.next_u32();
                        }
                    }
                    iters += 1;
                }
                counter.store(iters, Ordering::Release);
            });
        }
        std::thread::sleep(cfg.duration);
        stop.store(true, Ordering::Release);
    });
    let elapsed = start.elapsed();

    Throughput {
        ops: counters.iter().map(|c| c.load(Ordering::Acquire)).sum(),
        elapsed,
    }
}

/// Single-threaded acquire/release latency in nanoseconds per pair — the
/// T = 1 point of Figure 2 ("a useful benchmark for uncontended latency").
pub fn uncontended_latency_ns<L: RawLock>(pairs: u64) -> f64 {
    let lock = L::default();
    // Warmup.
    for _ in 0..1_000 {
        lock.lock();
        // Safety: just acquired on this thread.
        unsafe { lock.unlock() };
    }
    let start = Instant::now();
    for _ in 0..pairs {
        lock.lock();
        // Safety: just acquired on this thread.
        unsafe { lock.unlock() };
    }
    start.elapsed().as_nanos() as f64 / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemlock_core::hemlock::{Hemlock, HemlockNaive};
    use hemlock_locks::{McsLock, TicketLock};

    fn quick(contention: Contention, threads: usize) -> MutexBenchConfig {
        MutexBenchConfig {
            threads,
            duration: Duration::from_millis(80),
            contention,
        }
    }

    #[test]
    fn single_thread_makes_progress() {
        let t = mutex_bench::<Hemlock>(quick(Contention::Maximum, 1));
        assert!(t.ops > 1_000, "got only {} iterations", t.ops);
    }

    #[test]
    fn contended_run_makes_progress_all_locks() {
        assert!(mutex_bench::<Hemlock>(quick(Contention::Maximum, 3)).ops > 100);
        assert!(mutex_bench::<HemlockNaive>(quick(Contention::Maximum, 3)).ops > 100);
        assert!(mutex_bench::<McsLock>(quick(Contention::Maximum, 3)).ops > 100);
        assert!(mutex_bench::<TicketLock>(quick(Contention::Maximum, 3)).ops > 100);
    }

    #[test]
    fn moderate_contention_runs() {
        let t = mutex_bench::<Hemlock>(quick(Contention::Moderate, 2));
        assert!(t.ops > 100);
    }

    #[test]
    fn uncontended_latency_is_sane() {
        let ns = uncontended_latency_ns::<Hemlock>(10_000);
        assert!(ns > 0.0 && ns < 100_000.0, "{ns} ns/pair");
    }
}
