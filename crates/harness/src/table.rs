//! Plain-text table and CSV output for the reproduction binaries.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}", cell, w = widths[i]);
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` fractional digits.
pub fn fmt_f64(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["Lock", "Rate"]);
        t.row(vec!["MCS", "3.81"]);
        t.row(vec!["Hemlock", "4.48"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Lock"));
        assert!(lines[3].starts_with("Hemlock"));
        // Columns align: "Rate" header starts where the values start.
        let rate_col = lines[0].find("Rate").unwrap();
        assert_eq!(lines[2].find("3.81").unwrap(), rate_col);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["x,y", "plain"]);
        assert_eq!(t.to_csv(), "a,b\n\"x,y\",plain\n");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn fmt_helper() {
        assert_eq!(fmt_f64(2.51828, 2), "2.52");
    }
}
