//! A minimal executor: [`block_on`] plus a multi-worker [`TaskPool`].
//!
//! The workspace is offline/vendored, so the async subsystem
//! (`hemlock-async`) cannot lean on an external runtime; this module is
//! the in-tree substitute the benches, tests, and examples drive. It is a
//! deliberately small, classic design:
//!
//! - [`block_on`] — drives one future on the current thread with a
//!   park/unpark waker;
//! - [`TaskPool`] — `N` worker threads sharing one injector queue. Each
//!   spawned task is an `Arc` that *is* its own [`Waker`]
//!   (`std::task::Wake`); waking pushes the task back onto the queue. A
//!   small per-task state machine (idle / queued / running / notified)
//!   guarantees a task is polled by at most one worker at a time and that
//!   a wake arriving *during* a poll re-queues the task afterwards — the
//!   standard no-lost-wakeup discipline.
//!
//! Tasks may migrate between workers across polls, which is precisely why
//! the async lock guards in `hemlock-async` must be (and are) `Send`, and
//! why raw locks — whose `unlock` is thread-bound — can only ever be held
//! *within* a single poll.
//!
//! When observability is enabled (`hemlock_obs::enabled()`, the default)
//! the pool feeds the `pool.*` registry metrics: injector queue depth,
//! spawn/wake/poll/completion counts.

use hemlock_obs::trace;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::thread::JoinHandle as ThreadHandle;

/// Runs a future to completion on the current thread, parking between
/// polls.
///
/// ```
/// use hemlock_harness::executor::block_on;
///
/// assert_eq!(block_on(async { 2 + 2 }), 4);
/// ```
pub fn block_on<F: Future>(fut: F) -> F::Output {
    struct Unparker {
        thread: std::thread::Thread,
        notified: AtomicBool,
    }
    impl Wake for Unparker {
        fn wake(self: Arc<Self>) {
            self.notified.store(true, Ordering::Release);
            self.thread.unpark();
        }
    }
    let unparker = Arc::new(Unparker {
        thread: std::thread::current(),
        notified: AtomicBool::new(false),
    });
    let waker = Waker::from(Arc::clone(&unparker));
    let mut cx = Context::from_waker(&waker);
    let mut fut = std::pin::pin!(fut);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            Poll::Pending => {
                while !unparker.notified.swap(false, Ordering::Acquire) {
                    std::thread::park();
                }
            }
        }
    }
}

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// Task states for the per-task scheduling machine.
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const NOTIFIED: u8 = 3;
const DONE: u8 = 4;

struct Task {
    /// One of [`IDLE`]/[`QUEUED`]/[`RUNNING`]/[`NOTIFIED`]/[`DONE`].
    state: AtomicU8,
    /// The future, present while the task is alive and not being polled.
    future: Mutex<Option<BoxFuture>>,
    pool: Arc<PoolShared>,
}

impl Task {
    /// Transitions toward QUEUED and enqueues if this call won the
    /// transition. Idempotent from every state.
    fn schedule(self: &Arc<Self>) {
        loop {
            let state = self.state.load(Ordering::Acquire);
            let (target, push) = match state {
                IDLE => (QUEUED, true),
                RUNNING => (NOTIFIED, false),
                QUEUED | NOTIFIED | DONE => return,
                _ => unreachable!("bad task state"),
            };
            if self
                .state
                .compare_exchange(state, target, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                if push {
                    if hemlock_obs::enabled() {
                        hemlock_obs::registry().pool_wakes.inc();
                    }
                    self.pool.push(Arc::clone(self));
                }
                return;
            }
        }
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        self.schedule();
    }
}

struct PoolShared {
    queue: Mutex<VecDeque<Arc<Task>>>,
    available: Condvar,
    shutdown: AtomicBool,
}

impl PoolShared {
    fn push(&self, task: Arc<Task>) {
        if hemlock_obs::enabled() {
            hemlock_obs::registry().pool_queue_depth.inc();
        }
        self.queue.lock().expect("pool queue").push_back(task);
        self.available.notify_one();
    }
}

/// Shared state of one spawned task's result slot (`Err` carries the
/// payload of a panic that escaped the task's future).
struct JoinShared<T> {
    slot: Mutex<Option<std::thread::Result<T>>>,
    done: Condvar,
}

/// Handle to a spawned task's result; blocking [`JoinHandle::join`]
/// returns it.
pub struct JoinHandle<T> {
    shared: Arc<JoinShared<T>>,
}

impl<T> JoinHandle<T> {
    /// Blocks the calling thread until the task completes, returning its
    /// output. Must be called from outside the pool's workers (a worker
    /// joining its own pool would deadlock the pool). If the task
    /// panicked, the panic is resumed here — exactly
    /// `std::thread::JoinHandle` semantics, and crucially the worker that
    /// ran the task survived (the panic was caught at the poll boundary).
    pub fn join(self) -> T {
        let mut slot = self.shared.slot.lock().expect("join slot");
        loop {
            match slot.take() {
                Some(Ok(out)) => return out,
                Some(Err(panic)) => std::panic::resume_unwind(panic),
                None => slot = self.shared.done.wait(slot).expect("join slot"),
            }
        }
    }

    /// True once the task has completed (non-blocking).
    pub fn is_finished(&self) -> bool {
        self.shared.slot.lock().expect("join slot").is_some()
    }
}

/// Future adapter that converts a panic escaping the inner future's
/// `poll` into a `Ready(Err(payload))`, so a panicking task reports
/// through its [`JoinHandle`] instead of killing the worker thread and
/// leaving `join()` blocked forever. The unwind still runs the future's
/// local destructors (lock guards release), and the poisoned future is
/// dropped immediately rather than ever polled again.
struct CatchUnwind<F> {
    inner: Option<Pin<Box<F>>>,
}

impl<F: Future> Future for CatchUnwind<F> {
    type Output = std::thread::Result<F::Output>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let inner = self.inner.as_mut().expect("polled after completion");
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inner.as_mut().poll(cx))) {
            Ok(Poll::Ready(out)) => {
                self.inner = None;
                Poll::Ready(Ok(out))
            }
            Ok(Poll::Pending) => Poll::Pending,
            Err(panic) => {
                self.inner = None;
                Poll::Ready(Err(panic))
            }
        }
    }
}

/// A fixed-size pool of worker threads driving spawned futures.
///
/// Dropping the pool shuts the workers down after they finish the polls
/// they are in; queued-but-unpolled tasks are dropped (their futures run
/// cancellation on drop). Join every handle you care about before
/// dropping the pool.
///
/// ```
/// use hemlock_harness::executor::TaskPool;
///
/// let pool = TaskPool::new(2);
/// let h = pool.spawn(async { 6 * 7 });
/// assert_eq!(h.join(), 42);
/// ```
pub struct TaskPool {
    shared: Arc<PoolShared>,
    workers: Vec<ThreadHandle<()>>,
}

impl TaskPool {
    /// Spawns `workers` worker threads (at least 1).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hemlock-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Spawns a future onto the pool, returning a handle to its output.
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let shared = Arc::new(JoinShared {
            slot: Mutex::new(None),
            done: Condvar::new(),
        });
        let js = Arc::clone(&shared);
        let wrapped: BoxFuture = Box::pin(async move {
            let out = CatchUnwind {
                inner: Some(Box::pin(fut)),
            }
            .await;
            *js.slot.lock().expect("join slot") = Some(out);
            js.done.notify_all();
        });
        let task = Arc::new(Task {
            state: AtomicU8::new(QUEUED),
            future: Mutex::new(Some(wrapped)),
            pool: Arc::clone(&self.shared),
        });
        if hemlock_obs::enabled() {
            hemlock_obs::registry().pool_spawned.inc();
        }
        self.shared.push(task);
        JoinHandle { shared }
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Drop whatever never got polled; future drops run cancellation.
        self.shared.queue.lock().expect("pool queue").clear();
    }
}

fn worker_loop(shared: &Arc<PoolShared>) {
    loop {
        let task = {
            let mut q = shared.queue.lock().expect("pool queue");
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(t) = q.pop_front() {
                    break t;
                }
                q = shared.available.wait(q).expect("pool queue");
            }
        };
        if hemlock_obs::enabled() {
            hemlock_obs::registry().pool_queue_depth.dec();
        }
        // QUEUED → RUNNING: we are the only poller from here on.
        task.state.store(RUNNING, Ordering::Release);
        let Some(mut fut) = task.future.lock().expect("task future").take() else {
            // Completed or stolen (cannot happen under the state machine,
            // but a missing future is simply nothing to do).
            task.state.store(DONE, Ordering::Release);
            continue;
        };
        let waker = Waker::from(Arc::clone(&task));
        let mut cx = Context::from_waker(&waker);
        if hemlock_obs::enabled() {
            hemlock_obs::registry().pool_polls.inc();
        }
        // Poll-interval timestamp for the retro `pool.poll` span: only
        // when tracing is sampled (one relaxed load otherwise), and only
        // emitted if the poll actually ran a traced request (the wrapped
        // future leaves its id behind via `take_polled_trace`).
        let poll_t0 = if trace::active() { trace::now_ns() } else { 0 };
        let polled = fut.as_mut().poll(&mut cx);
        let traced_id = trace::take_polled_trace();
        if traced_id != 0 {
            trace::span_at(
                traced_id,
                "pool.poll",
                poll_t0,
                trace::now_ns(),
                trace::SpanKind::Sync,
            );
        }
        match polled {
            Poll::Ready(()) => {
                if hemlock_obs::enabled() {
                    hemlock_obs::registry().pool_completed.inc();
                }
                task.state.store(DONE, Ordering::Release);
            }
            Poll::Pending => {
                // Restore the future *before* leaving RUNNING, so a waker
                // firing right after the transition finds it in place.
                *task.future.lock().expect("task future") = Some(fut);
                if task
                    .state
                    .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    // A wake arrived during the poll (NOTIFIED): re-queue.
                    task.state.store(QUEUED, Ordering::Release);
                    shared.push(Arc::clone(&task));
                }
            }
        }
    }
}

/// Cooperatively yields once: resolves on the second poll, after waking
/// itself. Lets a task give the pool a chance to run others (the
/// `with_two_async` backoff uses the same shape).
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn block_on_resolves_immediate_and_yielding_futures() {
        assert_eq!(block_on(async { 1 + 1 }), 2);
        assert_eq!(
            block_on(async {
                yield_now().await;
                yield_now().await;
                7
            }),
            7
        );
    }

    #[test]
    fn pool_runs_tasks_to_completion_across_workers() {
        let pool = TaskPool::new(4);
        assert_eq!(pool.workers(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..32)
            .map(|i| {
                let counter = Arc::clone(&counter);
                pool.spawn(async move {
                    for _ in 0..i {
                        yield_now().await;
                    }
                    counter.fetch_add(1, Ordering::SeqCst);
                    i
                })
            })
            .collect();
        let sum: usize = handles.into_iter().map(JoinHandle::join).sum();
        assert_eq!(sum, (0..32).sum());
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn external_wakes_resume_a_parked_task() {
        // A task parks on a oneshot-style flag; a plain thread flips the
        // flag and wakes it through the registered waker.
        struct Oneshot {
            fired: AtomicBool,
            waker: Mutex<Option<Waker>>,
        }
        let shot = Arc::new(Oneshot {
            fired: AtomicBool::new(false),
            waker: Mutex::new(None),
        });
        let pool = TaskPool::new(2);
        let shot2 = Arc::clone(&shot);
        let h = pool.spawn(async move {
            std::future::poll_fn(|cx| {
                if shot2.fired.load(Ordering::Acquire) {
                    return Poll::Ready(());
                }
                *shot2.waker.lock().expect("waker slot") = Some(cx.waker().clone());
                if shot2.fired.load(Ordering::Acquire) {
                    Poll::Ready(())
                } else {
                    Poll::Pending
                }
            })
            .await;
            99
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        shot.fired.store(true, Ordering::Release);
        if let Some(w) = shot.waker.lock().expect("waker slot").take() {
            w.wake();
        }
        assert_eq!(h.join(), 99);
    }

    #[test]
    fn task_panic_reports_at_join_and_spares_the_worker() {
        let pool = TaskPool::new(1);
        let bad = pool.spawn(async {
            yield_now().await;
            panic!("task exploded");
        });
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| bad.join()));
        assert!(r.is_err(), "join must resume the task's panic");
        // The single worker survived the panic: the pool still runs tasks.
        assert_eq!(pool.spawn(async { 11 }).join(), 11);
    }

    #[test]
    fn is_finished_tracks_completion() {
        let pool = TaskPool::new(1);
        let h = pool.spawn(async { 5 });
        let v = loop {
            if h.is_finished() {
                break h.join();
            }
            std::thread::yield_now();
        };
        assert_eq!(v, 5);
    }
}
