//! # hemlock-harness
//!
//! The benchmark harnesses behind the Hemlock paper's evaluation section:
//!
//! - [`mutexbench`] — MutexBench at maximum and moderate contention
//!   (Figures 2–7), plus single-thread acquire/release latency;
//! - [`multiwait`] — the Figure 9 multi-waiting benchmark (10 locks,
//!   leader acquires ascending / releases descending);
//! - [`ring`] — the §5.5 token-ring circulation microbenchmark with
//!   Load/CAS/SWAP/FAA waiting;
//! - [`mt19937`] — the Mersenne Twister the moderate-contention workload
//!   steps (reimplemented and validated against the C++ standard's check
//!   value);
//! - [`measure`] / [`table`] / [`cli`] — timing, median-of-K, output
//!   formatting, and argument plumbing for the reproduction binaries in
//!   `hemlock-bench`;
//! - [`executor`] — a minimal in-tree async runtime (`block_on` + a
//!   multi-worker `TaskPool`), so the `hemlock-async` subsystem's benches
//!   and tests need no external runtime in this offline workspace;
//! - [`reactor`] — the tick-based readiness reactor backing
//!   `hemlock-net`'s nonblocking sockets (std-only; no epoll bindings in
//!   this offline workspace);
//! - [`zipf`] — a seeded Zipfian key-distribution sampler (Gray et al. /
//!   YCSB method) for service-shaped workloads (`loadgen`, `shardkv`).

#![warn(missing_docs)]

pub mod cli;
pub mod executor;
pub mod fairness;
pub mod histogram;
pub mod measure;
pub mod mt19937;
pub mod multiwait;
pub mod mutexbench;
pub mod reactor;
pub mod ring;
pub mod table;
pub mod zipf;

pub use cli::{Args, Spec};
pub use executor::{block_on, JoinHandle, TaskPool};
pub use fairness::{fairness_bench, FairnessReport};
pub use hemlock_obs::now_ns;
pub use histogram::{Hist, Histogram, Pcts};
pub use measure::{median_of, thread_sweep, Throughput};
pub use mt19937::Mt19937;
pub use multiwait::{multiwait_bench, MultiwaitConfig};
pub use mutexbench::{mutex_bench, uncontended_latency_ns, Contention, MutexBenchConfig};
pub use reactor::Reactor;
pub use ring::{dyn_ring_bench, ring_bench, RingWait};
pub use table::{fmt_f64, Table};
pub use zipf::Zipf;

#[cfg(test)]
mod proptests {
    use crate::mt19937::Mt19937;
    use proptest::prelude::*;

    proptest! {
        /// Determinism: equal seeds produce equal streams.
        #[test]
        fn mt19937_deterministic(seed: u32, n in 1usize..2000) {
            let mut a = Mt19937::new(seed);
            let mut b = Mt19937::new(seed);
            for _ in 0..n {
                prop_assert_eq!(a.next_u32(), b.next_u32());
            }
        }

        /// `below(b)` stays in range for arbitrary bounds.
        #[test]
        fn below_in_range(seed: u32, bound in 1u32..10_000) {
            let mut rng = Mt19937::new(seed);
            for _ in 0..100 {
                prop_assert!(rng.below(bound) < bound);
            }
        }
    }
}
