//! MT19937 (32-bit Mersenne Twister), from scratch.
//!
//! The paper's moderate-contention MutexBench steps a **thread-local C++
//! `std::mt19937`** in the non-critical section and a shared one in the
//! critical section (§5.1, Figure 3). To reproduce that workload's exact
//! shape (state size ≈ 2.5 KB — several cache lines of genuine memory
//! traffic per reseed batch — and the same temper/twist arithmetic), we
//! implement the generator rather than substituting a small PRNG.
//!
//! Validated against the reference outputs, including the C++ standard's
//! own check value: the 10000th output of a default-seeded (5489) mt19937
//! is 4123659995 ([rand.predef] in the C++ standard).

const N: usize = 624;
const M: usize = 397;
const MATRIX_A: u32 = 0x9908_B0DF;
const UPPER_MASK: u32 = 0x8000_0000;
const LOWER_MASK: u32 = 0x7FFF_FFFF;

/// The default seed used by C++ `std::mt19937`.
pub const DEFAULT_SEED: u32 = 5489;

/// 32-bit Mersenne Twister.
#[derive(Clone)]
pub struct Mt19937 {
    state: [u32; N],
    index: usize,
}

impl Mt19937 {
    /// Seeds per the reference `init_genrand`.
    pub fn new(seed: u32) -> Self {
        let mut state = [0u32; N];
        state[0] = seed;
        for i in 1..N {
            state[i] = 1_812_433_253u32
                .wrapping_mul(state[i - 1] ^ (state[i - 1] >> 30))
                .wrapping_add(i as u32);
        }
        Self { state, index: N }
    }

    /// Regenerates the state block (the "twist").
    fn twist(&mut self) {
        for i in 0..N {
            let y = (self.state[i] & UPPER_MASK) | (self.state[(i + 1) % N] & LOWER_MASK);
            let mut next = self.state[(i + M) % N] ^ (y >> 1);
            if y & 1 != 0 {
                next ^= MATRIX_A;
            }
            self.state[i] = next;
        }
        self.index = 0;
    }

    /// Next tempered 32-bit output.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        if self.index >= N {
            self.twist();
        }
        let mut y = self.state[self.index];
        self.index += 1;
        y ^= y >> 11;
        y ^= (y << 7) & 0x9D2C_5680;
        y ^= (y << 15) & 0xEFC6_0000;
        y ^ (y >> 18)
    }

    /// Uniform value in `[0, bound)` (simple modulo, as the benchmark's
    /// distribution fidelity requirements are loose).
    #[inline]
    pub fn below(&mut self, bound: u32) -> u32 {
        self.next_u32() % bound
    }

    /// Uniform `f64` in `[0, 1)` with 53-bit resolution — the reference
    /// implementation's `genrand_res53` (two tempered outputs combined),
    /// so the Zipfian sampler's inversion step gets full mantissa
    /// precision rather than a 32-bit lattice.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        let a = (self.next_u32() >> 5) as f64; // 27 bits
        let b = (self.next_u32() >> 6) as f64; // 26 bits
        (a * 67_108_864.0 + b) * (1.0 / 9_007_199_254_740_992.0)
    }
}

impl Default for Mt19937 {
    fn default() -> Self {
        Self::new(DEFAULT_SEED)
    }
}

impl std::fmt::Debug for Mt19937 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mt19937")
            .field("index", &self.index)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_seed_5489() {
        // First outputs of the reference implementation with seed 5489.
        let mut rng = Mt19937::new(5489);
        let expected: [u32; 5] = [3499211612, 581869302, 3890346734, 3586334585, 545404204];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(rng.next_u32(), e, "output #{i}");
        }
    }

    #[test]
    fn cpp_standard_check_value() {
        // [rand.predef]: the 10000th consecutive invocation of a
        // default-constructed std::mt19937 produces 4123659995.
        let mut rng = Mt19937::default();
        let mut last = 0;
        for _ in 0..10_000 {
            last = rng.next_u32();
        }
        assert_eq!(last, 4123659995);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Mt19937::new(1);
        let mut b = Mt19937::new(2);
        let same = (0..100).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 5);
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = Mt19937::new(7);
        for _ in 0..10_000 {
            assert!(rng.below(400) < 400);
        }
    }

    #[test]
    fn next_f64_is_unit_interval_and_matches_res53() {
        let mut rng = Mt19937::new(5489);
        // genrand_res53 of the first two reference outputs with seed 5489
        // (3499211612, 581869302): (a*2^26 + b) / 2^53.
        let expected = ((3499211612u64 >> 5) as f64 * 67_108_864.0 + (581869302u64 >> 6) as f64)
            / 9_007_199_254_740_992.0;
        assert_eq!(rng.next_f64(), expected);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn below_covers_the_range() {
        let mut rng = Mt19937::new(11);
        let mut seen = [false; 16];
        for _ in 0..10_000 {
            seen[rng.below(16) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }
}
