//! Measurement scaffolding: timed intervals, medians, throughput units.

use std::time::Duration;

/// A throughput observation.
#[derive(Clone, Copy, Debug)]
pub struct Throughput {
    /// Completed operations across all threads.
    pub ops: u64,
    /// Wall-clock measurement interval.
    pub elapsed: Duration,
}

impl Throughput {
    /// Millions of operations per second — the paper's Y-axis unit
    /// ("Aggregate throughput rate : M steps/sec").
    pub fn mops(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64() / 1e6
    }

    /// Operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64()
    }
}

/// Median of the samples produced by running `f` `runs` times — the paper
/// reports "the median of 7 independent runs" (Figure 2) and "the median of
/// 5 runs" (Figure 8).
pub fn median_of(runs: usize, mut f: impl FnMut() -> f64) -> f64 {
    assert!(runs >= 1);
    let mut samples: Vec<f64> = (0..runs).map(|_| f()).collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    samples[samples.len() / 2]
}

/// The thread counts a sweep visits, capped at `max` (log-ish spacing like
/// the paper's X axes).
pub fn thread_sweep(max: usize) -> Vec<usize> {
    let candidates = [1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128];
    let mut out: Vec<usize> = candidates.into_iter().take_while(|&t| t <= max).collect();
    if out.last() != Some(&max) && max >= 1 {
        out.push(max);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mops_math() {
        let t = Throughput {
            ops: 5_000_000,
            elapsed: Duration::from_secs(1),
        };
        assert!((t.mops() - 5.0).abs() < 1e-9);
        assert!((t.ops_per_sec() - 5e6).abs() < 1.0);
    }

    #[test]
    fn median_is_robust_to_outliers() {
        let mut vals = [1.0, 100.0, 2.0, 3.0, 2.5].into_iter();
        let m = median_of(5, || vals.next().unwrap());
        assert_eq!(m, 2.5);
    }

    #[test]
    fn sweep_respects_cap() {
        assert_eq!(thread_sweep(4), vec![1, 2, 3, 4]);
        assert_eq!(thread_sweep(5), vec![1, 2, 3, 4, 5]);
        assert!(thread_sweep(64).contains(&64));
        assert_eq!(thread_sweep(1), vec![1]);
    }
}
