//! The multi-waiting benchmark (§5.6, Figure 9).
//!
//! "We modify MutexBench to have an array of 10 shared locks. There is a
//! single dedicated 'leader' thread which loops as follows: acquire all 10
//! locks in ascending order and then release the locks in reverse order. At
//! the end of the measurement interval the leader reports the number of
//! steps it completed [...] All the other threads loop, picking a single
//! random lock from the set of 10, and then acquire and release that lock.
//! We ignore the number of iterations completed by the non-leader threads.
//! Neither the leader nor the non-leaders execute any delays."
//!
//! This is the adversarial regime for Hemlock: up to `min(T−1, N−1)`
//! threads can end up busy-waiting on the leader's single Grant word, and
//! CTR's RMW polling makes that word ping-pong between caches.

use crate::measure::Throughput;
use core::sync::atomic::{AtomicBool, Ordering};
use hemlock_core::raw::RawLock;
use std::time::{Duration, Instant};

/// Configuration for the Figure 9 benchmark.
#[derive(Clone, Copy, Debug)]
pub struct MultiwaitConfig {
    /// Total threads (1 leader + T−1 non-leaders).
    pub threads: usize,
    /// Number of shared locks (the paper uses 10).
    pub locks: usize,
    /// Measurement interval.
    pub duration: Duration,
}

/// Runs the benchmark; `ops` counts the **leader's** completed steps only
/// (one step = acquire all locks ascending + release all descending).
pub fn multiwait_bench<L: RawLock>(cfg: MultiwaitConfig) -> Throughput {
    assert!(cfg.threads >= 1 && cfg.locks >= 1);
    let locks: Vec<L> = (0..cfg.locks).map(|_| L::default()).collect();
    let stop = AtomicBool::new(false);
    let mut leader_steps = 0u64;

    let start = Instant::now();
    std::thread::scope(|s| {
        // Non-leaders.
        for t in 1..cfg.threads {
            let locks = &locks;
            let stop = &stop;
            s.spawn(move || {
                let mut state = 0x1234_5678_9ABC_DEF0u64 ^ (t as u64).wrapping_mul(0x9E37);
                while !stop.load(Ordering::Relaxed) {
                    state = state.wrapping_add(0x9E3779B97F4A7C15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                    let pick = (z % locks.len() as u64) as usize;
                    locks[pick].lock();
                    // Safety: just acquired on this thread.
                    unsafe { locks[pick].unlock() };
                }
            });
        }
        // Leader (run on this thread so we can return its count directly).
        while !stop.load(Ordering::Relaxed) {
            for l in locks.iter() {
                l.lock();
            }
            for l in locks.iter().rev() {
                // Safety: acquired above on this thread.
                unsafe { l.unlock() };
            }
            leader_steps += 1;
            if start.elapsed() >= cfg.duration {
                stop.store(true, Ordering::Release);
            }
        }
    });
    let elapsed = start.elapsed();

    Throughput {
        ops: leader_steps,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemlock_core::hemlock::{Hemlock, HemlockNaive};
    use hemlock_locks::{ClhLock, McsLock, TicketLock};

    fn quick(threads: usize) -> MultiwaitConfig {
        MultiwaitConfig {
            threads,
            locks: 10,
            duration: Duration::from_millis(80),
        }
    }

    #[test]
    fn leader_alone_progresses() {
        let t = multiwait_bench::<Hemlock>(quick(1));
        assert!(t.ops > 100, "leader-only steps: {}", t.ops);
    }

    #[test]
    fn leader_with_obstruction_progresses_all_locks() {
        assert!(multiwait_bench::<Hemlock>(quick(3)).ops > 3);
        assert!(multiwait_bench::<HemlockNaive>(quick(3)).ops > 3);
        assert!(multiwait_bench::<McsLock>(quick(3)).ops > 3);
        assert!(multiwait_bench::<ClhLock>(quick(3)).ops > 3);
        assert!(multiwait_bench::<TicketLock>(quick(3)).ops > 3);
    }
}
