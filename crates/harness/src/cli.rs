//! Strict `--key value` / `--flag` argument parsing for the reproduction
//! binaries (kept dependency-free on purpose).
//!
//! Each binary declares its options in a [`Spec`]; parsing then *rejects*
//! anything outside the declaration — positional junk, typo'd flags, a
//! value option with no value, duplicates — with a message naming the
//! nearest known option and the full usage. (An earlier revision silently
//! ignored unknown tokens, which made `fig2 --thread 8` run a default
//! sweep without complaint.)
//!
//! Every spec automatically includes `--help` and `--wait spin|yield[:N]`;
//! the latter is applied to the process-wide
//! [`hemlock_core::spin::set_wait_policy`] during [`Spec::parse_env`], so
//! all binaries expose the paper-faithful pure-spin mode and the
//! oversubscription-safe spin-then-yield mode uniformly.

use hemlock_core::spin::{set_wait_policy, WaitPolicy, DEFAULT_SPINS};
use std::collections::HashMap;
use std::time::Duration;

/// An option declaration: name (without `--`) and help text.
pub type OptDecl = (&'static str, &'static str);

/// Options common to every thread-sweep figure binary.
pub const SWEEP_VALUES: &[OptDecl] = &[
    ("secs", "seconds per measurement point (fractional allowed)"),
    ("runs", "median-of-N runs per point"),
    ("max-threads", "largest thread count in the sweep"),
    ("lock", "comma-separated lock algorithms from the catalog"),
];

/// Flags common to every thread-sweep figure binary.
pub const SWEEP_FLAGS: &[OptDecl] = &[
    ("quick", "smoke-test preset (small sweep, short intervals)"),
    ("csv", "emit CSV instead of aligned tables"),
];

/// Declares a binary's accepted options and parses against them.
#[derive(Clone, Debug, Default)]
pub struct Spec {
    name: &'static str,
    about: &'static str,
    values: Vec<OptDecl>,
    flags: Vec<OptDecl>,
}

impl Spec {
    /// Starts a spec for binary `name` with a one-line description.
    pub fn new(name: &'static str, about: &'static str) -> Self {
        Self {
            name,
            about,
            values: vec![(
                "wait",
                "busy-wait policy: `spin` (paper testbed) or `yield[:SPINS]` (default)",
            )],
            flags: Vec::new(),
        }
    }

    /// Adds the standard sweep options ([`SWEEP_VALUES`] / [`SWEEP_FLAGS`]).
    pub fn sweep(mut self) -> Self {
        self.values.extend_from_slice(SWEEP_VALUES);
        self.flags.extend_from_slice(SWEEP_FLAGS);
        self
    }

    /// Adds one `--name <value>` option.
    pub fn value(mut self, name: &'static str, help: &'static str) -> Self {
        self.values.push((name, help));
        self
    }

    /// Adds one bare `--name` flag.
    pub fn flag(mut self, name: &'static str, help: &'static str) -> Self {
        self.flags.push((name, help));
        self
    }

    /// Parses an explicit token stream against this spec.
    pub fn parse(&self, tokens: impl IntoIterator<Item = String>) -> Result<Args, String> {
        let mut args = Args::default();
        let mut iter = tokens.into_iter();
        while let Some(tok) = iter.next() {
            let Some(name) = tok.strip_prefix("--") else {
                return Err(format!(
                    "unexpected positional argument {tok:?} (every option is --name or --name value)"
                ));
            };
            if name.is_empty() {
                return Err("stray `--` in arguments".to_string());
            }
            if self.flags.iter().any(|(f, _)| *f == name) {
                if !args.flags.iter().any(|f| f == name) {
                    args.flags.push(name.to_string());
                }
            } else if self.values.iter().any(|(v, _)| *v == name) {
                let value = iter
                    .next()
                    .filter(|v| !v.starts_with("--"))
                    .ok_or_else(|| format!("option --{name} requires a value"))?;
                if args.values.insert(name.to_string(), value).is_some() {
                    return Err(format!("option --{name} given twice"));
                }
            } else if name == "help" {
                return Err(HELP_SENTINEL.to_string());
            } else {
                return Err(match self.nearest(name) {
                    Some(sugg) => format!("unknown option --{name} (did you mean --{sugg}?)"),
                    None => format!("unknown option --{name}"),
                });
            }
        }
        Ok(args)
    }

    /// Parses `std::env::args()`. On `--help`, prints usage and exits 0; on
    /// any error, prints the error plus usage to stderr and exits 2. Also
    /// applies `--wait` to the process-wide busy-wait policy.
    pub fn parse_env(&self) -> Args {
        let parsed = self.parse(std::env::args().skip(1)).and_then(|args| {
            if let Some(policy) = args.wait_policy()? {
                set_wait_policy(policy);
            }
            Ok(args)
        });
        match parsed {
            Ok(args) => args,
            Err(e) if e == HELP_SENTINEL => {
                println!("{}", self.usage());
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("error: {e}\n\n{}", self.usage());
                std::process::exit(2);
            }
        }
    }

    /// The rendered `--help` text.
    pub fn usage(&self) -> String {
        let mut s = format!("{} — {}\n\nOptions:\n", self.name, self.about);
        for (name, help) in &self.values {
            s.push_str(&format!("  --{name} <value>\n        {help}\n"));
        }
        for (name, help) in &self.flags {
            s.push_str(&format!("  --{name}\n        {help}\n"));
        }
        s.push_str("  --help\n        print this message\n");
        s
    }

    /// Closest known option name within a small edit distance.
    fn nearest(&self, name: &str) -> Option<&'static str> {
        self.values
            .iter()
            .chain(self.flags.iter())
            .map(|(n, _)| *n)
            .map(|n| (edit_distance(n, name), n))
            .filter(|(d, _)| *d <= 2)
            .min_by_key(|(d, _)| *d)
            .map(|(_, n)| n)
    }
}

const HELP_SENTINEL: &str = "\u{1}help";

fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// Parsed command-line arguments (build via [`Spec::parse_env`]).
#[derive(Clone, Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Value of `--name <v>`, parsed, or `default`. Exits with a message on
    /// an unparseable value (e.g. `--threads x`).
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get_parsed(name) {
            Ok(v) => v.unwrap_or(default),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    /// Value of `--name <v>` parsed as `T`; `Ok(None)` when absent,
    /// `Err` describing the malformed token when present but unparseable.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.values.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value {v:?} for --{name}")),
        }
    }

    /// Comma-separated list value of `--name <v1,v2,…>` parsed as `T`s, or
    /// `default`. `Err` names the malformed element; empty segments
    /// (`1,,4`, trailing commas) are rejected with the de-comma'd spelling
    /// the caller probably meant, instead of a confusing downstream error
    /// about an empty key.
    pub fn get_list<T: std::str::FromStr + Clone>(
        &self,
        name: &str,
        default: &[T],
    ) -> Result<Vec<T>, String> {
        let Some(raw) = self.values.get(name) else {
            return Ok(default.to_vec());
        };
        raw.split(',')
            .map(|tok| {
                let tok = tok.trim();
                if tok.is_empty() {
                    let cleaned: Vec<&str> = raw
                        .split(',')
                        .map(str::trim)
                        .filter(|t| !t.is_empty())
                        .collect();
                    return Err(if cleaned.is_empty() {
                        format!("empty element in --{name} {raw:?} (expected a list like 1,4,16)")
                    } else {
                        format!(
                            "empty element in --{name} {raw:?} (did you mean \"{}\"?)",
                            cleaned.join(",")
                        )
                    });
                }
                tok.parse().map_err(|_| {
                    format!(
                        "invalid element {tok:?} in --{name} {raw:?} (expected a list like 1,4,16)"
                    )
                })
            })
            .collect()
    }

    /// String value of `--name <v>`, or `default`.
    pub fn get_str(&self, name: &str, default: &str) -> String {
        self.values
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// `--secs <f>` style duration (seconds, fractional allowed).
    pub fn duration(&self, name: &str, default_secs: f64) -> Duration {
        Duration::from_secs_f64(self.get(name, default_secs))
    }

    /// True when the bare flag `--name` was given.
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The `--wait` policy, if given: `spin` or `yield[:SPINS]`.
    pub fn wait_policy(&self) -> Result<Option<WaitPolicy>, String> {
        let Some(raw) = self.values.get("wait") else {
            return Ok(None);
        };
        parse_wait_policy(raw).map(Some)
    }

    /// The `--timeout <ms>` acquisition budget, if given, parsed strictly
    /// (same contract as [`Args::wait_policy`]: an error names the
    /// malformed token; typo'd option names already got a did-you-mean
    /// from [`Spec::parse`]). Binaries that accept it declare
    /// `.value("timeout", …)` in their spec — `timeoutbench` and `rwbench`
    /// feed it to the locks' `try_lock_for` family.
    pub fn timeout(&self) -> Result<Option<Duration>, String> {
        let Some(raw) = self.values.get("timeout") else {
            return Ok(None);
        };
        parse_timeout_ms(raw).map(Some)
    }

    /// The `--tasks <n>` concurrent-task count(s), if given, parsed
    /// strictly (same contract as [`Args::timeout`]: an error names the
    /// malformed token; typo'd option names already got a did-you-mean
    /// from [`Spec::parse`]). Accepts a single count or a comma list
    /// (`256` or `64,256,1024`) — `asyncbench` sweeps the list and
    /// `shardkv --tasks` drives its async mode per count. Binaries that
    /// accept it declare `.value("tasks", …)` in their spec.
    pub fn tasks(&self) -> Result<Option<Vec<usize>>, String> {
        let Some(raw) = self.values.get("tasks") else {
            return Ok(None);
        };
        parse_tasks(raw).map(Some)
    }

    /// The `--addr <host:port>` socket address, if given, parsed strictly
    /// (same contract as [`Args::timeout`]). Shared by the `kvserver` bin
    /// (where to bind) and `loadgen` (where to connect; omitting it spawns
    /// an in-process server instead).
    pub fn addr(&self) -> Result<Option<std::net::SocketAddr>, String> {
        let Some(raw) = self.values.get("addr") else {
            return Ok(None);
        };
        parse_addr(raw).map(Some)
    }

    /// The `--conns <n>` connection count, if given: strictly positive
    /// (`loadgen` with zero connections would measure nothing).
    pub fn conns(&self) -> Result<Option<usize>, String> {
        self.positive("conns")
    }

    /// The `--pipeline <n>` in-flight-requests-per-connection depth, if
    /// given: strictly positive (depth 1 *is* the unpipelined protocol;
    /// depth 0 would send nothing — certainly a mistake).
    pub fn pipeline(&self) -> Result<Option<usize>, String> {
        self.positive("pipeline")
    }

    /// The `--value-size <bytes>` PUT payload size, if given: strictly
    /// positive (benchmarking empty values exercises only the frame
    /// headers; ask for that by measuring PING instead).
    pub fn value_size(&self) -> Result<Option<usize>, String> {
        self.positive("value-size")
    }

    fn positive(&self, name: &'static str) -> Result<Option<usize>, String> {
        let Some(raw) = self.values.get(name) else {
            return Ok(None);
        };
        parse_positive(name, raw).map(Some)
    }
}

/// Parses an `--addr` value as a socket address (`host:port`, e.g.
/// `127.0.0.1:7878` or `[::1]:7878`). Hostnames are rejected — this
/// offline workspace does no DNS — with a message naming the accepted
/// forms.
pub fn parse_addr(raw: &str) -> Result<std::net::SocketAddr, String> {
    raw.parse().map_err(|_| {
        format!(
            "invalid --addr {raw:?}: expected an ip:port address \
             (e.g. `127.0.0.1:7878` or `[::1]:7878`; hostnames are not resolved)"
        )
    })
}

/// Parses a strictly positive integer option value (`--conns`,
/// `--pipeline`, `--value-size`); the error names the option.
pub fn parse_positive(name: &str, raw: &str) -> Result<usize, String> {
    match raw.parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!(
            "invalid --{name} {raw:?}: expected a positive integer"
        )),
    }
}

/// Parses a `--tasks` value: one or more comma-separated **strictly
/// positive** task counts (`0` tasks would measure an idle executor —
/// certainly a mistake, so it is rejected rather than silently swept).
pub fn parse_tasks(raw: &str) -> Result<Vec<usize>, String> {
    raw.split(',')
        .map(|tok| {
            let tok = tok.trim();
            if tok.is_empty() {
                return Err(format!(
                    "empty element in --tasks {raw:?} (expected counts like `256` or `64,256`)"
                ));
            }
            match tok.parse::<usize>() {
                Ok(n) if n > 0 => Ok(n),
                _ => Err(format!(
                    "invalid --tasks element {tok:?}: expected a positive task count \
                     (e.g. `256` or `64,256`)"
                )),
            }
        })
        .collect()
}

/// Parses a `--timeout` value: integer or fractional **milliseconds**,
/// strictly positive and finite (`0` would silently degrade every timed
/// acquisition to a trylock — ask for that explicitly, not via a timeout).
pub fn parse_timeout_ms(raw: &str) -> Result<Duration, String> {
    let ms: f64 = raw.parse().map_err(|_| {
        format!("invalid --timeout {raw:?}: expected milliseconds (e.g. `5` or `0.5`)")
    })?;
    if !ms.is_finite() || ms <= 0.0 {
        return Err(format!(
            "invalid --timeout {raw:?}: must be a positive number of milliseconds"
        ));
    }
    Ok(Duration::from_secs_f64(ms / 1_000.0))
}

/// Parses a `--wait` value: `spin`, `yield`, or `yield:SPINS`.
pub fn parse_wait_policy(raw: &str) -> Result<WaitPolicy, String> {
    match raw {
        "spin" => Ok(WaitPolicy::Spin),
        "yield" => Ok(WaitPolicy::SpinThenYield {
            spins: DEFAULT_SPINS,
        }),
        other => match other.strip_prefix("yield:") {
            Some(n) => n
                .parse()
                .map(|spins| WaitPolicy::SpinThenYield { spins })
                .map_err(|_| format!("invalid spin count in --wait {other:?}")),
            None => Err(format!(
                "invalid --wait {raw:?}: expected `spin`, `yield`, or `yield:SPINS`"
            )),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> Spec {
        Spec::new("t", "test binary")
            .sweep()
            .value("threads", "x")
            .flag("verbose", "x")
    }

    fn parse(s: &str) -> Result<Args, String> {
        spec().parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_key_values_and_flags() {
        let a = parse("--threads 8 --csv --secs 2.5").unwrap();
        assert_eq!(a.get("threads", 1usize), 8);
        assert!(a.has("csv"));
        assert_eq!(a.duration("secs", 10.0), Duration::from_secs_f64(2.5));
        assert!(!a.has("missing"));
        assert_eq!(a.get("missing", 7u32), 7);
    }

    #[test]
    fn consecutive_flags() {
        let a = parse("--quick --verbose --runs 3").unwrap();
        assert!(a.has("quick") && a.has("verbose"));
        assert_eq!(a.get("runs", 0usize), 3);
    }

    #[test]
    fn get_str_default() {
        let a = parse("--lock hemlock").unwrap();
        assert_eq!(a.get_str("lock", "x"), "hemlock");
        assert_eq!(a.get_str("other", "x"), "x");
    }

    #[test]
    fn rejects_positional_junk() {
        let e = parse("extra --runs 3").unwrap_err();
        assert!(e.contains("positional"), "{e}");
    }

    #[test]
    fn rejects_unknown_option_with_suggestion() {
        let e = parse("--thread 8").unwrap_err();
        assert!(e.contains("--thread") && e.contains("--threads"), "{e}");
        let e = parse("--totally-bogus").unwrap_err();
        assert!(e.contains("unknown option"), "{e}");
    }

    #[test]
    fn rejects_missing_or_duplicate_values() {
        assert!(parse("--runs").unwrap_err().contains("requires a value"));
        assert!(parse("--runs --csv")
            .unwrap_err()
            .contains("requires a value"));
        assert!(parse("--runs 1 --runs 2").unwrap_err().contains("twice"));
    }

    #[test]
    fn get_list_parses_comma_separated_values() {
        let spec = Spec::new("t", "x").value("shards", "x");
        let a = spec
            .parse(["--shards".to_string(), "1,4,16".to_string()])
            .unwrap();
        assert_eq!(a.get_list("shards", &[64usize]).unwrap(), vec![1, 4, 16]);
        assert_eq!(a.get_list("missing", &[64usize]).unwrap(), vec![64]);
        let bad = spec
            .parse(["--shards".to_string(), "1,x".to_string()])
            .unwrap();
        assert!(bad
            .get_list::<usize>("shards", &[])
            .unwrap_err()
            .contains("\"x\""));
    }

    #[test]
    fn get_list_rejects_empty_segments_with_a_suggestion() {
        let spec = Spec::new("t", "x").value("shards", "x");
        let parse_list = |raw: &str| {
            spec.parse(["--shards".to_string(), raw.to_string()])
                .unwrap()
                .get_list::<usize>("shards", &[])
        };
        // A doubled comma suggests the cleaned spelling.
        let e = parse_list("1,,4").unwrap_err();
        assert!(e.contains("empty element"), "{e}");
        assert!(e.contains("did you mean \"1,4\"?"), "{e}");
        // So do trailing commas and whitespace-only segments.
        let e = parse_list("1,4,").unwrap_err();
        assert!(e.contains("did you mean \"1,4\"?"), "{e}");
        let e = parse_list("1, ,4").unwrap_err();
        assert!(e.contains("did you mean \"1,4\"?"), "{e}");
        // Nothing but commas: no suggestion to offer.
        let e = parse_list(",").unwrap_err();
        assert!(
            e.contains("empty element") && !e.contains("did you mean"),
            "{e}"
        );
    }

    #[test]
    fn malformed_values_are_reported() {
        let a = parse("--runs banana").unwrap();
        let e = a.get_parsed::<usize>("runs").unwrap_err();
        assert!(e.contains("banana"), "{e}");
    }

    #[test]
    fn wait_policy_forms() {
        assert_eq!(parse_wait_policy("spin"), Ok(WaitPolicy::Spin));
        assert_eq!(
            parse_wait_policy("yield"),
            Ok(WaitPolicy::SpinThenYield {
                spins: DEFAULT_SPINS
            })
        );
        assert_eq!(
            parse_wait_policy("yield:64"),
            Ok(WaitPolicy::SpinThenYield { spins: 64 })
        );
        assert!(parse_wait_policy("yield:x").is_err());
        assert!(parse_wait_policy("never").is_err());
        let a = parse("--wait yield:9").unwrap();
        assert_eq!(
            a.wait_policy().unwrap(),
            Some(WaitPolicy::SpinThenYield { spins: 9 })
        );
    }

    #[test]
    fn timeout_parses_strictly_with_wait_style_errors() {
        assert_eq!(parse_timeout_ms("5"), Ok(Duration::from_millis(5)));
        assert_eq!(parse_timeout_ms("0.5"), Ok(Duration::from_micros(500)));
        for bad in ["x", "", "-1", "0", "nan", "inf", "5ms"] {
            let e = parse_timeout_ms(bad).unwrap_err();
            assert!(e.contains("--timeout"), "{bad}: {e}");
        }
        // Wired through Args like --wait is.
        let spec = Spec::new("t", "x").value("timeout", "acquisition budget in ms");
        let a = spec
            .parse(["--timeout".to_string(), "2.5".to_string()])
            .unwrap();
        assert_eq!(a.timeout().unwrap(), Some(Duration::from_micros(2_500)));
        let a = spec.parse(std::iter::empty()).unwrap();
        assert_eq!(a.timeout().unwrap(), None);
        let a = spec
            .parse(["--timeout".to_string(), "bogus".to_string()])
            .unwrap();
        assert!(a.timeout().unwrap_err().contains("bogus"));
        // A typo'd spelling gets the same did-you-mean as every option.
        let e = spec
            .parse(["--timeuot".to_string(), "5".to_string()])
            .unwrap_err();
        assert!(e.contains("did you mean --timeout"), "{e}");
    }

    #[test]
    fn tasks_parses_strictly_with_wait_style_errors() {
        assert_eq!(parse_tasks("256"), Ok(vec![256]));
        assert_eq!(parse_tasks("64, 256,1024"), Ok(vec![64, 256, 1024]));
        for bad in ["x", "", "-1", "0", "64,0", "64,,256", "1.5"] {
            let e = parse_tasks(bad).unwrap_err();
            assert!(e.contains("--tasks"), "{bad}: {e}");
        }
        // Wired through Args like --timeout is.
        let spec = Spec::new("t", "x").value("tasks", "concurrent task counts");
        let a = spec
            .parse(["--tasks".to_string(), "64,256".to_string()])
            .unwrap();
        assert_eq!(a.tasks().unwrap(), Some(vec![64, 256]));
        let a = spec.parse(std::iter::empty()).unwrap();
        assert_eq!(a.tasks().unwrap(), None);
        let a = spec
            .parse(["--tasks".to_string(), "bogus".to_string()])
            .unwrap();
        assert!(a.tasks().unwrap_err().contains("bogus"));
        // A typo'd spelling gets the same did-you-mean as every option.
        let e = spec
            .parse(["--taks".to_string(), "5".to_string()])
            .unwrap_err();
        assert!(e.contains("did you mean --tasks"), "{e}");
    }

    #[test]
    fn net_options_parse_strictly_with_wait_style_errors() {
        use std::net::SocketAddr;
        assert_eq!(
            parse_addr("127.0.0.1:7878"),
            Ok("127.0.0.1:7878".parse::<SocketAddr>().unwrap())
        );
        assert_eq!(
            parse_addr("[::1]:80"),
            Ok("[::1]:80".parse::<SocketAddr>().unwrap())
        );
        for bad in ["localhost:80", "1.2.3.4", ":80", "1.2.3.4:notaport", ""] {
            let e = parse_addr(bad).unwrap_err();
            assert!(e.contains("--addr"), "{bad}: {e}");
        }
        assert_eq!(parse_positive("conns", "64"), Ok(64));
        for bad in ["0", "-1", "x", "", "1.5"] {
            let e = parse_positive("pipeline", bad).unwrap_err();
            assert!(e.contains("--pipeline"), "{bad}: {e}");
        }
        // Wired through Args like --timeout is, with did-you-mean intact.
        let spec = Spec::new("t", "x")
            .value("addr", "x")
            .value("conns", "x")
            .value("pipeline", "x")
            .value("value-size", "x");
        let a = spec
            .parse(
                [
                    "--addr",
                    "127.0.0.1:9000",
                    "--conns",
                    "64",
                    "--pipeline",
                    "8",
                    "--value-size",
                    "100",
                ]
                .map(String::from),
            )
            .unwrap();
        assert_eq!(
            a.addr().unwrap(),
            Some("127.0.0.1:9000".parse::<SocketAddr>().unwrap())
        );
        assert_eq!(a.conns().unwrap(), Some(64));
        assert_eq!(a.pipeline().unwrap(), Some(8));
        assert_eq!(a.value_size().unwrap(), Some(100));
        let empty = spec.parse(std::iter::empty()).unwrap();
        assert_eq!(empty.addr().unwrap(), None);
        assert_eq!(empty.conns().unwrap(), None);
        let e = spec
            .parse(["--cons".to_string(), "4".to_string()])
            .unwrap_err();
        assert!(e.contains("did you mean --conns"), "{e}");
        let bad = spec
            .parse(["--value-size".to_string(), "0".to_string()])
            .unwrap();
        assert!(bad.value_size().unwrap_err().contains("--value-size"));
    }

    #[test]
    fn usage_lists_every_option() {
        let u = spec().usage();
        for opt in [
            "--secs",
            "--runs",
            "--max-threads",
            "--lock",
            "--wait",
            "--quick",
            "--csv",
            "--threads",
            "--verbose",
            "--help",
        ] {
            assert!(u.contains(opt), "usage missing {opt}:\n{u}");
        }
    }

    #[test]
    fn edit_distance_sane() {
        assert_eq!(edit_distance("lock", "lock"), 0);
        assert_eq!(edit_distance("lock", "locks"), 1);
        assert_eq!(edit_distance("secs", "swcs"), 1);
        assert!(edit_distance("quick", "csv") > 2);
    }
}
