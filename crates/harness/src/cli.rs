//! Minimal `--key value` / `--flag` argument parsing for the reproduction
//! binaries (kept dependency-free on purpose).

use std::collections::HashMap;
use std::time::Duration;

/// Parsed command-line arguments.
#[derive(Clone, Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `std::env::args()` (skipping the binary name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit token stream.
    pub fn parse(tokens: impl IntoIterator<Item = String>) -> Self {
        let mut args = Args::default();
        let mut iter = tokens.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(name) = tok.strip_prefix("--") {
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let value = iter.next().expect("peeked");
                        args.values.insert(name.to_string(), value);
                    }
                    _ => args.flags.push(name.to_string()),
                }
            }
        }
        args
    }

    /// Value of `--name <v>`, parsed, or `default`.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.values
            .get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// String value of `--name <v>`, or `default`.
    pub fn get_str(&self, name: &str, default: &str) -> String {
        self.values
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// `--secs <f>` style duration (seconds, fractional allowed).
    pub fn duration(&self, name: &str, default_secs: f64) -> Duration {
        Duration::from_secs_f64(self.get(name, default_secs))
    }

    /// True when the bare flag `--name` was given.
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_key_values_and_flags() {
        let a = args("--threads 8 --csv --secs 2.5");
        assert_eq!(a.get("threads", 1usize), 8);
        assert!(a.has("csv"));
        assert_eq!(a.duration("secs", 10.0), Duration::from_secs_f64(2.5));
        assert!(!a.has("missing"));
        assert_eq!(a.get("missing", 7u32), 7);
    }

    #[test]
    fn consecutive_flags() {
        let a = args("--quick --verbose --runs 3");
        assert!(a.has("quick") && a.has("verbose"));
        assert_eq!(a.get("runs", 0usize), 3);
    }

    #[test]
    fn get_str_default() {
        let a = args("--name hemlock");
        assert_eq!(a.get_str("name", "x"), "hemlock");
        assert_eq!(a.get_str("other", "x"), "x");
    }
}
