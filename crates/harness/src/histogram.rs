//! Log-bucketed latency histogram (HdrHistogram-style, dependency-free).
//!
//! Used for acquisition-latency distributions: FIFO locks trade a little
//! throughput for bounded tail latency, while unfair locks (TAS/TTAS) show
//! heavy tails and starvation — the §4 contrast ("may allow unfairness and
//! even indefinite starvation").

/// Power-of-two bucketed histogram with 8 sub-buckets per octave.
/// Covers 1 ns .. ~1.1 hours with ≤ 12.5% relative error.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// buckets[octave][sub]: counts.
    buckets: Vec<[u64; SUBS]>,
    count: u64,
    sum: u128,
    max: u64,
    min: u64,
}

const SUBS: usize = 8;
const OCTAVES: usize = 42;

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![[0; SUBS]; OCTAVES],
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    fn bucket_of(value: u64) -> (usize, usize) {
        if value < SUBS as u64 {
            return (0, value as usize);
        }
        let octave = (63 - value.leading_zeros()) as usize - 2; // value >= 8
        let sub = ((value >> octave) & 0b111) as usize;
        (octave.min(OCTAVES - 1), sub)
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let (o, s) = Self::bucket_of(value);
        self.buckets[o][s] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (o, subs) in other.buckets.iter().enumerate() {
            for (s, c) in subs.iter().enumerate() {
                self.buckets[o][s] += c;
            }
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Value at quantile `q` in [0, 1] (upper bucket bound — pessimistic).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0)) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (o, subs) in self.buckets.iter().enumerate() {
            for (s, c) in subs.iter().enumerate() {
                seen += c;
                if seen >= target.max(1) {
                    return Self::bucket_upper(o, s).min(self.max);
                }
            }
        }
        self.max
    }

    fn bucket_upper(octave: usize, sub: usize) -> u64 {
        if octave == 0 {
            return sub as u64;
        }
        ((sub as u64 + 1) << octave) - 1
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn exact_small_values() {
        let mut h = Histogram::new();
        for v in 0..8u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 7);
        assert_eq!(h.quantile(1.0), 7);
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = Histogram::new();
        let mut x = 1u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record((x >> 40).max(1));
        }
        let q50 = h.quantile(0.50);
        let q90 = h.quantile(0.90);
        let q99 = h.quantile(0.99);
        assert!(q50 <= q90 && q90 <= q99, "{q50} {q90} {q99}");
        assert!(q99 <= h.max());
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = Histogram::new();
        h.record(1_000_000);
        let q = h.quantile(0.5);
        let err = (q as f64 - 1_000_000.0).abs() / 1_000_000.0;
        assert!(err <= 0.13, "bucket error {err}");
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [5u64, 100, 10_000] {
            a.record(v);
            b.record(v * 2);
        }
        a.merge(&b);
        assert_eq!(a.count(), 6);
        assert_eq!(a.max(), 20_000);
        assert_eq!(a.min(), 5);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.mean(), 20.0);
    }
}
