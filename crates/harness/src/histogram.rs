//! Log-bucketed latency histogram — now the workspace-shared
//! [`hemlock_obs::Hist`], re-exported here under its historical name.
//!
//! Used for acquisition-latency distributions: FIFO locks trade a little
//! throughput for bounded tail latency, while unfair locks (TAS/TTAS) show
//! heavy tails and starvation — the §4 contrast ("may allow unfairness and
//! even indefinite starvation"). The implementation (and its tests) lives
//! in `hemlock-obs`, where the metrics registry embeds the same buckets in
//! atomic form; bench bins extract percentile sets through
//! [`Hist::pcts`](hemlock_obs::Hist::pcts) instead of re-deriving
//! p50/p99/p999 triples by hand.

pub use hemlock_obs::{Hist, Pcts};

/// The historical name of [`Hist`] (8 sub-buckets per octave, 1 ns ..
/// ~1.1 h, ≤ 12.5% relative error, mergeable).
pub type Histogram = Hist;
