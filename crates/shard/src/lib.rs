//! # hemlock-shard
//!
//! A striped/sharded lock-table subsystem — the "millions of locks" side of
//! the Hemlock paper's headline claim. Hemlock's lock body is one word
//! (Table 1), so the marginal cost of another lock instance is negligible;
//! this crate spends that budget on *parallelism*: keyed state is split
//! across a fixed power-of-two number of shards, each guarded by its own
//! [`Mutex`](hemlock_core::Mutex) over any [`RawLock`](hemlock_core::RawLock) algorithm from the
//! workspace (selectable at runtime through `hemlock_locks::catalog`, as
//! every bench binary does).
//!
//! - [`ShardedTable<K, V, L>`](table::ShardedTable) — a concurrent hash
//!   table with per-shard locking, guard-returning access
//!   ([`table::ShardedTable::guard`]) plus closure APIs (`get`/`with`/
//!   `update`), and a per-shard contention census ([`stats::TableStats`]);
//! - [`ShardedCounter<L>`](counter::ShardedCounter) — a striped counter
//!   where each stripe is its own lock-guarded cell, the smallest possible
//!   demonstration of trading lock *instances* for coherence traffic;
//! - a **flat-combining batch layer** ([`batch`]) —
//!   [`ShardedTable::apply_batch`](table::ShardedTable::apply_batch) /
//!   [`apply_batch_async`](table::ShardedTable::apply_batch_async) run a
//!   whole batch with one lock acquisition per shard touched, and
//!   contending batches *post* their ops on a per-shard publication list
//!   for the current lock holder to service instead of spinning.
//!
//! The design is deliberately **resize-free**: the stripe count is fixed at
//! construction, so a shard's lock is the only synchronization any
//! operation needs — no seqlock over a growing directory, no RCU epoch.
//! Space accounting comes straight from the algorithm's
//! [`LockMeta`](hemlock_core::LockMeta):
//! [`footprint_bytes`](table::ShardedTable::footprint_bytes) reports what a
//! given shard count costs, which is how the `shardkv` benchmark prices the
//! space/throughput trade-off explored by the Hapax-Locks line of work.
//!
//! ```
//! use hemlock_core::hemlock::Hemlock;
//! use hemlock_shard::ShardedTable;
//!
//! let t: ShardedTable<String, u64, Hemlock> = ShardedTable::with_shards(64);
//! t.insert("alice".into(), 1);
//! t.update("alice".into(), |slot| *slot = slot.map(|n| n + 1));
//! assert_eq!(t.get("alice"), Some(2)); // borrowed-form lookup, as HashMap
//! assert_eq!(t.shards(), 64);
//! ```

#![deny(missing_docs)]

pub mod batch;
pub mod counter;
pub mod stats;
pub mod table;

pub use batch::{TableOp, TableResult};
pub use counter::ShardedCounter;
pub use stats::{ShardSnapshot, TableStats};
pub use table::{ShardGuard, ShardReadGuard, ShardedTable};

#[cfg(test)]
mod proptests {
    use crate::ShardedTable;
    use hemlock_core::hemlock::Hemlock;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[derive(Clone, Debug)]
    enum Op {
        Insert(u16, u32),
        Remove(u16),
        Update(u16, u32),
        Get(u16),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
            any::<u16>().prop_map(Op::Remove),
            (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Update(k, v)),
            any::<u16>().prop_map(Op::Get),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Sequential oracle: a sharded table behaves exactly like a
        /// HashMap, regardless of how keys scatter over shards.
        #[test]
        fn table_matches_hashmap_oracle(
            shards in 1usize..40,
            ops in proptest::collection::vec(op_strategy(), 1..200),
        ) {
            let t: ShardedTable<u16, u32, Hemlock> = ShardedTable::with_shards(shards);
            let mut oracle: HashMap<u16, u32> = HashMap::new();
            for op in ops {
                match op {
                    Op::Insert(k, v) => {
                        prop_assert_eq!(t.insert(k, v), oracle.insert(k, v));
                    }
                    Op::Remove(k) => {
                        prop_assert_eq!(t.remove(&k), oracle.remove(&k));
                    }
                    Op::Update(k, v) => {
                        // Increment-or-insert, exercising both entry arms.
                        t.update(k, |slot| {
                            *slot = Some(slot.unwrap_or(v).wrapping_add(1));
                        });
                        let e = oracle.entry(k).or_insert(v);
                        *e = e.wrapping_add(1);
                    }
                    Op::Get(k) => {
                        prop_assert_eq!(t.get(&k), oracle.get(&k).copied());
                    }
                }
            }
            prop_assert_eq!(t.len(), oracle.len());
            for (k, v) in &oracle {
                prop_assert_eq!(t.get(k), Some(*v));
            }
            let mut drained = t.drain();
            drained.sort_unstable();
            let mut expect: Vec<(u16, u32)> = oracle.into_iter().collect();
            expect.sort_unstable();
            prop_assert_eq!(drained, expect);
            prop_assert!(t.is_empty());
        }
    }
}

/// Satellite proptest for the flat-combining layer: `apply_batch` mixed
/// with concurrent point ops and a cancelled async batch future, run
/// over **every** `async.*` catalog lock (each algorithm monomorphized
/// as the shard guard). Invariants checked per case:
///
/// - results are positional and match a sequential oracle (the batch's
///   keyspace is disjoint from the interferers', so its region must be
///   bit-identical to single-threaded execution);
/// - concurrent point ops lose nothing (their region matches their own
///   oracle);
/// - a cancelled async batch is per-shard-group all-or-nothing — every
///   group is either fully applied (claimed before the withdrawal) or
///   fully absent (withdrawn), never partial and never doubled.
#[cfg(test)]
mod combining_proptests {
    use crate::batch::{TableOp, TableResult};
    use crate::ShardedTable;
    use hemlock_async::catalog::{AsyncCatalogEntry, AsyncLockVisitor};
    use hemlock_core::raw::RawTryLock;
    use proptest::prelude::*;
    use std::collections::HashMap;
    use std::future::Future;

    #[derive(Clone, Debug)]
    enum BOp {
        Put(u16, u32),
        Remove(u16),
        Get(u16),
    }

    fn bop() -> impl Strategy<Value = BOp> {
        prop_oneof![
            (0u16..24, any::<u32>()).prop_map(|(k, v)| BOp::Put(k, v)),
            (0u16..24).prop_map(BOp::Remove),
            (0u16..24).prop_map(BOp::Get),
        ]
    }

    /// Shifts an op into a disjoint key region.
    fn to_table_op(op: &BOp, region: u16) -> TableOp<u16, u32> {
        match *op {
            BOp::Put(k, v) => TableOp::Put(region + k, v),
            BOp::Remove(k) => TableOp::Remove(region + k),
            BOp::Get(k) => TableOp::Get(region + k),
        }
    }

    struct Case {
        shards: usize,
        batch: Vec<BOp>,
        point: Vec<BOp>,
        cancel: Vec<BOp>,
    }

    impl AsyncLockVisitor for &Case {
        type Output = ();
        fn visit<L: RawTryLock + 'static>(self, _e: &'static AsyncCatalogEntry) -> Self::Output {
            run_case::<L>(self);
        }
    }

    /// Applies `ops` to a sequential oracle, returning per-op results in
    /// the batch result encoding.
    fn oracle_apply(
        oracle: &mut HashMap<u16, u32>,
        ops: &[TableOp<u16, u32>],
    ) -> Vec<TableResult<u32>> {
        ops.iter()
            .map(|op| match op {
                TableOp::Get(k) => TableResult::Value(oracle.get(k).copied()),
                TableOp::Put(k, v) => TableResult::Prev(oracle.insert(*k, *v)),
                TableOp::Remove(k) => TableResult::Prev(oracle.remove(k)),
            })
            .collect()
    }

    fn run_case<L: RawTryLock>(case: &Case) {
        let t: ShardedTable<u16, u32, L> = ShardedTable::with_shards(case.shards);
        let batch_ops: Vec<_> = case.batch.iter().map(|o| to_table_op(o, 0)).collect();
        let point_ops: Vec<_> = case.point.iter().map(|o| to_table_op(o, 1000)).collect();
        let cancel_ops: Vec<_> = case.cancel.iter().map(|o| to_table_op(o, 2000)).collect();

        // Phase 1: the batch races point ops in a disjoint key region.
        let (batch_out, point_out) = std::thread::scope(|s| {
            let t = &t;
            let pt = s.spawn(|| {
                point_ops
                    .iter()
                    .map(|op| match op {
                        TableOp::Get(k) => TableResult::Value(t.get(k)),
                        TableOp::Put(k, v) => TableResult::Prev(t.insert(*k, *v)),
                        TableOp::Remove(k) => TableResult::Prev(t.remove(k)),
                    })
                    .collect::<Vec<_>>()
            });
            let b = t.apply_batch(&batch_ops);
            (b, pt.join().expect("point thread"))
        });

        // Positional results, oracle-exact in both disjoint regions.
        let mut b_oracle = HashMap::new();
        assert_eq!(&batch_out, &oracle_apply(&mut b_oracle, &batch_ops));
        let mut p_oracle = HashMap::new();
        assert_eq!(&point_out, &oracle_apply(&mut p_oracle, &point_ops));

        // Phase 2: an async batch cancelled mid-wait. Holding the first
        // op's shard forces at least that group onto the publication
        // list before the single poll; dropping the future withdraws it.
        if let Some(first) = cancel_ops.first() {
            let k = match first {
                TableOp::Get(k) | TableOp::Put(k, _) | TableOp::Remove(k) => *k,
            };
            let held = t.guard_shard(t.shard_index(&k));
            {
                use std::task::{Context, Wake, Waker};
                struct Noop;
                impl Wake for Noop {
                    fn wake(self: std::sync::Arc<Self>) {}
                }
                let fut = t.apply_batch_async(&cancel_ops);
                let mut fut = Box::pin(fut);
                let waker = Waker::from(std::sync::Arc::new(Noop));
                // Pending (the held shard blocks its group) or Ready
                // (every other group ran fast-path) — both legal; the
                // all-or-nothing check below covers both.
                let _ = fut.as_mut().poll(&mut Context::from_waker(&waker));
            }
            drop(held);
        }

        // Per-shard-group all-or-nothing for the cancelled batch: group
        // the ops as apply_batch does and compare each group's keys
        // against its own sequential oracle — fully applied or fully
        // untouched (region 2000+ starts empty), never partial.
        let mut groups: HashMap<usize, Vec<&TableOp<u16, u32>>> = HashMap::new();
        for op in &cancel_ops {
            let k = match op {
                TableOp::Get(k) | TableOp::Put(k, _) | TableOp::Remove(k) => k,
            };
            groups.entry(t.shard_index(k)).or_default().push(op);
        }
        for (shard, group) in groups {
            let mut g_oracle: HashMap<u16, u32> = HashMap::new();
            for op in &group {
                match op {
                    TableOp::Get(_) => {}
                    TableOp::Put(k, v) => {
                        g_oracle.insert(*k, *v);
                    }
                    TableOp::Remove(k) => {
                        g_oracle.remove(k);
                    }
                }
            }
            let keys: std::collections::HashSet<u16> = group
                .iter()
                .map(|op| match op {
                    TableOp::Get(k) | TableOp::Put(k, _) | TableOp::Remove(k) => *k,
                })
                .collect();
            let applied = keys.iter().all(|k| t.get(k) == g_oracle.get(k).copied());
            let untouched = keys.iter().all(|k| t.get(k).is_none());
            assert!(
                applied || untouched,
                "shard {} group neither fully applied nor fully withdrawn",
                shard
            );
        }

        // No interference bled across regions.
        for (k, v) in &b_oracle {
            assert_eq!(t.get(k), Some(*v));
        }
        for (k, v) in &p_oracle {
            assert_eq!(t.get(k), Some(*v));
        }
    }

    fn cases() -> u32 {
        if cfg!(miri) {
            2
        } else {
            16
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(cases()))]
        #[test]
        fn combining_layer_is_linearizable_per_shard_over_every_async_lock(
            shards in 1usize..8,
            batch in proptest::collection::vec(bop(), 1..20),
            point in proptest::collection::vec(bop(), 1..20),
            cancel in proptest::collection::vec(bop(), 1..12),
        ) {
            let case = Case { shards, batch, point, cancel };
            for entry in hemlock_async::catalog::ENTRIES {
                hemlock_async::catalog::with_async_lock_type(entry.key, &case)
                    .expect("catalog key dispatches");
            }
        }
    }
}
