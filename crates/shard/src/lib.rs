//! # hemlock-shard
//!
//! A striped/sharded lock-table subsystem — the "millions of locks" side of
//! the Hemlock paper's headline claim. Hemlock's lock body is one word
//! (Table 1), so the marginal cost of another lock instance is negligible;
//! this crate spends that budget on *parallelism*: keyed state is split
//! across a fixed power-of-two number of shards, each guarded by its own
//! [`Mutex`](hemlock_core::Mutex) over any [`RawLock`](hemlock_core::RawLock) algorithm from the
//! workspace (selectable at runtime through `hemlock_locks::catalog`, as
//! every bench binary does).
//!
//! - [`ShardedTable<K, V, L>`](table::ShardedTable) — a concurrent hash
//!   table with per-shard locking, guard-returning access
//!   ([`table::ShardedTable::guard`]) plus closure APIs (`get`/`with`/
//!   `update`), and a per-shard contention census ([`stats::TableStats`]);
//! - [`ShardedCounter<L>`](counter::ShardedCounter) — a striped counter
//!   where each stripe is its own lock-guarded cell, the smallest possible
//!   demonstration of trading lock *instances* for coherence traffic.
//!
//! The design is deliberately **resize-free**: the stripe count is fixed at
//! construction, so a shard's lock is the only synchronization any
//! operation needs — no seqlock over a growing directory, no RCU epoch.
//! Space accounting comes straight from the algorithm's
//! [`LockMeta`](hemlock_core::LockMeta):
//! [`footprint_bytes`](table::ShardedTable::footprint_bytes) reports what a
//! given shard count costs, which is how the `shardkv` benchmark prices the
//! space/throughput trade-off explored by the Hapax-Locks line of work.
//!
//! ```
//! use hemlock_core::hemlock::Hemlock;
//! use hemlock_shard::ShardedTable;
//!
//! let t: ShardedTable<String, u64, Hemlock> = ShardedTable::with_shards(64);
//! t.insert("alice".into(), 1);
//! t.update("alice".into(), |slot| *slot = slot.map(|n| n + 1));
//! assert_eq!(t.get("alice"), Some(2)); // borrowed-form lookup, as HashMap
//! assert_eq!(t.shards(), 64);
//! ```

#![deny(missing_docs)]

pub mod counter;
pub mod stats;
pub mod table;

pub use counter::ShardedCounter;
pub use stats::{ShardSnapshot, TableStats};
pub use table::{ShardGuard, ShardedTable};

#[cfg(test)]
mod proptests {
    use crate::ShardedTable;
    use hemlock_core::hemlock::Hemlock;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[derive(Clone, Debug)]
    enum Op {
        Insert(u16, u32),
        Remove(u16),
        Update(u16, u32),
        Get(u16),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
            any::<u16>().prop_map(Op::Remove),
            (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Update(k, v)),
            any::<u16>().prop_map(Op::Get),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Sequential oracle: a sharded table behaves exactly like a
        /// HashMap, regardless of how keys scatter over shards.
        #[test]
        fn table_matches_hashmap_oracle(
            shards in 1usize..40,
            ops in proptest::collection::vec(op_strategy(), 1..200),
        ) {
            let t: ShardedTable<u16, u32, Hemlock> = ShardedTable::with_shards(shards);
            let mut oracle: HashMap<u16, u32> = HashMap::new();
            for op in ops {
                match op {
                    Op::Insert(k, v) => {
                        prop_assert_eq!(t.insert(k, v), oracle.insert(k, v));
                    }
                    Op::Remove(k) => {
                        prop_assert_eq!(t.remove(&k), oracle.remove(&k));
                    }
                    Op::Update(k, v) => {
                        // Increment-or-insert, exercising both entry arms.
                        t.update(k, |slot| {
                            *slot = Some(slot.unwrap_or(v).wrapping_add(1));
                        });
                        let e = oracle.entry(k).or_insert(v);
                        *e = e.wrapping_add(1);
                    }
                    Op::Get(k) => {
                        prop_assert_eq!(t.get(&k), oracle.get(&k).copied());
                    }
                }
            }
            prop_assert_eq!(t.len(), oracle.len());
            for (k, v) in &oracle {
                prop_assert_eq!(t.get(k), Some(*v));
            }
            let mut drained = t.drain();
            drained.sort_unstable();
            let mut expect: Vec<(u16, u32)> = oracle.into_iter().collect();
            expect.sort_unstable();
            prop_assert_eq!(drained, expect);
            prop_assert!(t.is_empty());
        }
    }
}
