//! Flat-combining batch operations on [`ShardedTable`]: [`TableOp`] /
//! [`TableResult`], the per-shard **publication list**, and
//! [`ShardedTable::apply_batch`] / [`ShardedTable::apply_batch_async`].
//!
//! # Why a combining layer
//!
//! Under service-shaped load every point operation pays one shard-lock
//! acquisition. When a burst of operations arrives together (a pipelined
//! network batch, a bulk load), most of those acquisitions are pure
//! overhead: the ops are independent and the shard holder could have
//! executed all of them in one critical section. The batch API does
//! exactly that — ops are grouped by shard and each shard's group runs
//! under a **single** acquisition — and when two batches collide on a
//! shard, the loser does not spin: it *posts* its shard group on the
//! shard's publication list and parks, and whichever thread holds the
//! shard lock drains the list and services the posted ops before
//! releasing. One lock acquisition amortizes the lock work of every
//! contending arrival (cf. Jayanti & Jayanti's constant *amortized* RMR
//! line of work in PAPERS.md) — classic flat combining.
//!
//! # The publication record discipline
//!
//! Publication records reuse the node discipline of the PR-5
//! `WakerQueue`: each record is an `Arc`-shared node with a one-byte
//! state machine, so every cancel-vs-claim race is memory-safe by
//! construction (whoever loses a race still holds a strong reference and
//! merely observes the winner's state):
//!
//! ```text
//!   POSTED ──claim (combiner, under shard lock)──► CLAIMED ──► DONE
//!      │
//!      └──withdraw (cancelled poster)──► ABORTED   (never applied)
//! ```
//!
//! The load-bearing invariant: **records are claimed and completed only
//! while the claiming thread holds the shard's data lock, and `DONE` is
//! stored before that lock is released.** Consequently a waiter that
//! acquires the shard lock and does not find its record `DONE` knows no
//! combiner can be mid-flight on it — it services the list (including
//! its own record) itself. There is no state in which a waiter must
//! block while holding the lock. This lifecycle is model-checked: the
//! **`proto.flat-combining`** scenario
//! (`hemlock_simlock::protocols::fc`, explored exhaustively by
//! `hemlock-model` and the `model-check` CI job) proves
//! `claimed-implies-locked` and `applied-at-most-once` over every
//! interleaving at small scope; deferring the `DONE` store past the lock
//! release (`FcBug::ReleaseBeforeDone`) is caught as a claim-discipline
//! violation.
//!
//! Completion wakeups need no new machinery: `DONE` precedes the shard
//! guard drop, and every guard drop already notifies the table's
//! [`WakerSet`](hemlock_core::wakerset::WakerSet) — the same
//! release-then-notify protocol the `*_async` point ops rely on.
//! Asynchronous posters park their task waker there; synchronous posters
//! park their *thread* there through an unpark-on-wake
//! [`Wake`](std::task::Wake) adapter, so both populations wait on a
//! posted op without spinning.
//!
//! Cancellation safety follows the PR-5 contract: dropping a pending
//! [`ShardedTable::apply_batch_async`] future withdraws its posted
//! record (`POSTED → ABORTED`, then unlink), so an aborted op is never
//! applied; if a combiner already claimed the record the ops execute to
//! completion and only the results are discarded — work, once claimed,
//! is as unretractable as a granted lock, and an op is applied **at most
//! once** on every path.

use crate::table::{ShardGuard, ShardedTable};
use core::cell::UnsafeCell;
use core::sync::atomic::{AtomicU8, Ordering};
use core::task::Poll;
use hemlock_core::hemlock::Hemlock;
use hemlock_core::raw::{RawLock, RawTryLock};
use hemlock_core::Mutex;
use hemlock_obs::trace;
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::sync::Arc;

/// One operation in a batch submitted to [`ShardedTable::apply_batch`].
///
/// Ops are plain data (no closures): that is what lets a *different*
/// thread — the combiner — execute them on the poster's behalf. Keys and
/// values are cloned into the table on application, so the submitted
/// batch remains readable for positional result matching.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TableOp<K, V> {
    /// Point lookup; answers [`TableResult::Value`].
    Get(K),
    /// Insert or overwrite; answers [`TableResult::Prev`].
    Put(K, V),
    /// Remove; answers [`TableResult::Prev`].
    Remove(K),
}

/// The outcome of one [`TableOp`], positionally matched to its op.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TableResult<V> {
    /// A [`TableOp::Get`]'s answer: the value, if present.
    Value(Option<V>),
    /// A [`TableOp::Put`]/[`TableOp::Remove`]'s answer: the previous
    /// value, if any.
    Prev(Option<V>),
    /// The op's key/value trait impls (`Hash`/`Eq`/`Clone`) panicked
    /// while it was applied. The op's effect on the table is whatever
    /// landed before the panic; **neighboring ops are unaffected** —
    /// per-op isolation is part of the batch contract.
    Panicked,
}

impl<V> TableResult<V> {
    /// The carried value (present for `Value`/`Prev`, `None` for
    /// `Panicked`) — a convenience for callers that treat lookups and
    /// previous values uniformly.
    pub fn into_value(self) -> Option<V> {
        match self {
            TableResult::Value(v) | TableResult::Prev(v) => v,
            TableResult::Panicked => None,
        }
    }
}

/// Publication-record states. See the module docs for the machine.
const POSTED: u8 = 0;
const CLAIMED: u8 = 1;
const DONE: u8 = 2;
const ABORTED: u8 = 3;

/// One posted shard group: the ops of a single batch that map to one
/// shard, awaiting service by whichever thread next holds that shard's
/// lock. `Arc`-shared between the poster and the combiner, like the
/// `WakerQueue`'s wait nodes.
pub(crate) struct PubRecord<K, V> {
    /// `POSTED` → `CLAIMED` → `DONE`, or `POSTED` → `ABORTED`.
    state: AtomicU8,
    /// The ops to apply, immutable after publication (the publication
    /// list's lock is the synchronizing edge from poster to combiner).
    /// `None` marks an op whose `Clone` panicked while the group was
    /// being posted — the combiner answers it [`TableResult::Panicked`]
    /// without applying anything, preserving positional results.
    ops: Vec<Option<TableOp<K, V>>>,
    /// Written by the sole claimant between `CLAIMED` and `DONE`
    /// (`Release`); read by the poster only after observing `DONE`
    /// (`Acquire`). No other access exists, which is the entire safety
    /// argument for the `UnsafeCell`.
    results: UnsafeCell<Vec<TableResult<V>>>,
    /// The poster's trace id (0 = untraced), captured at post time so the
    /// combiner can attribute its `shard.combine_serve` span to the
    /// request it serviced — the "which combiner serviced whose op" edge.
    trace: u64,
}

// Safety: `results` is accessed by exactly one side at a time, ordered
// by the `state` machine (see the field docs); `ops` is read-only after
// the record is published under the list lock.
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for PubRecord<K, V> {}

impl<K, V> PubRecord<K, V> {
    fn new(ops: Vec<Option<TableOp<K, V>>>) -> Self {
        Self {
            state: AtomicU8::new(POSTED),
            ops,
            results: UnsafeCell::new(Vec::new()),
            trace: trace::current(),
        }
    }

    /// Takes the results out after `DONE` was observed with `Acquire`.
    fn take_results(&self) -> Vec<TableResult<V>> {
        debug_assert_eq!(self.state.load(Ordering::Acquire), DONE);
        // Safety: `DONE` (Acquire) orders us after the claimant's final
        // write; the claimant never touches `results` again and the
        // poster calls this exactly once.
        unsafe { core::mem::take(&mut *self.results.get()) }
    }
}

/// One shard's publication list: posted records awaiting a combiner.
/// Guarded by a compact one-word Hemlock lock for the same reason the
/// `WakerSet` is — posting is the contended slow path, the sections are
/// a few pointer moves, and the per-shard space cost must stay small
/// (it is priced in [`ShardedTable::footprint_bytes`]).
pub(crate) struct PubList<K, V> {
    records: Mutex<Vec<Arc<PubRecord<K, V>>>, Hemlock>,
}

impl<K, V> Default for PubList<K, V> {
    fn default() -> Self {
        Self {
            records: Mutex::new(Vec::new()),
        }
    }
}

impl<K, V> PubList<K, V> {
    fn push(&self, rec: Arc<PubRecord<K, V>>) {
        self.records.lock().push(rec);
    }

    /// Empties the list, handing every pending record to the caller
    /// (who must hold the shard's data lock — see the module invariant).
    fn drain(&self) -> Vec<Arc<PubRecord<K, V>>> {
        core::mem::take(&mut *self.records.lock())
    }

    /// Unlinks one record by identity (a withdrawing poster). Records
    /// already drained by a combiner are simply not found — the state
    /// machine, not the list, decides whether the ops run.
    fn unlink(&self, rec: &Arc<PubRecord<K, V>>) {
        self.records.lock().retain(|r| !Arc::ptr_eq(r, rec));
    }
}

/// Applies one op to a shard map with per-op panic isolation: a panic in
/// the key/value trait impls is converted to [`TableResult::Panicked`]
/// and the remaining ops of the critical section proceed. This is what
/// keeps one poisoned op from wedging a combiner servicing neighbors.
fn apply_one<K: Hash + Eq + Clone, V: Clone>(
    map: &mut HashMap<K, V>,
    op: &TableOp<K, V>,
) -> TableResult<V> {
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match op {
        TableOp::Get(k) => TableResult::Value(map.get(k).cloned()),
        TableOp::Put(k, v) => TableResult::Prev(map.insert(k.clone(), v.clone())),
        TableOp::Remove(k) => TableResult::Prev(map.remove(k)),
    }));
    r.unwrap_or(TableResult::Panicked)
}

/// A poster's handle on its in-flight shard group. Dropping the slot
/// with a still-posted record **withdraws** it (`POSTED → ABORTED`, then
/// unlink), which is what makes `apply_batch_async` cancel-safe: an
/// abandoned future leaves no record a combiner could apply.
struct PostSlot<'a, K, V, L: RawLock> {
    table: &'a ShardedTable<K, V, L>,
    idx: usize,
    rec: Option<Arc<PubRecord<K, V>>>,
}

impl<K, V, L: RawLock> Drop for PostSlot<'_, K, V, L> {
    fn drop(&mut self) {
        let Some(rec) = self.rec.take() else { return };
        // Forbid any future claim first, then unlink. Losing the CAS
        // means a combiner already claimed (or finished) the record: the
        // ops execute to completion and the results die with the record
        // — claimed work is not retractable, granted-lock style.
        let _ = rec
            .state
            .compare_exchange(POSTED, ABORTED, Ordering::AcqRel, Ordering::Acquire);
        self.table.shard_pubs(self.idx).unlink(&rec);
    }
}

/// Wakes a parked *thread*: the adapter that lets synchronous batch
/// posters share the table's [`WakerSet`] with async tasks.
struct Unparker(std::thread::Thread);

impl std::task::Wake for Unparker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }
}

impl<K, V, L> ShardedTable<K, V, L>
where
    K: Hash + Eq + Clone + Send + Sync,
    V: Clone + Send + Sync,
    L: RawTryLock,
{
    /// Applies a batch of ops, **one shard-lock acquisition per shard
    /// touched**, returning results positionally matched to `ops`.
    ///
    /// Ops are grouped by shard and the groups executed in ascending
    /// shard order, each atomically within its shard (at most one lock
    /// is held at a time, so batches cannot deadlock each other or
    /// [`Self::with_two`]). Cross-shard atomicity is *not* promised —
    /// a concurrent observer may see one shard's group applied and
    /// another's not yet. Within a group, ops apply in batch order with
    /// per-op panic isolation ([`TableResult::Panicked`]).
    ///
    /// When the shard is busy this call does not spin: it posts the
    /// group on the shard's publication list and parks the thread; the
    /// current lock holder's batch path (or this thread, when it wins
    /// the next acquisition) services it. See the module docs for the
    /// combining protocol.
    ///
    /// ```
    /// use hemlock_core::hemlock::Hemlock;
    /// use hemlock_shard::{ShardedTable, TableOp, TableResult};
    ///
    /// let t: ShardedTable<u32, u32, Hemlock> = ShardedTable::with_shards(4);
    /// let out = t.apply_batch(&[
    ///     TableOp::Put(1, 10),
    ///     TableOp::Get(1),
    ///     TableOp::Remove(1),
    /// ]);
    /// assert_eq!(out, vec![
    ///     TableResult::Prev(None),
    ///     TableResult::Value(Some(10)),
    ///     TableResult::Prev(Some(10)),
    /// ]);
    /// ```
    pub fn apply_batch(&self, ops: &[TableOp<K, V>]) -> Vec<TableResult<V>> {
        let mut out: Vec<Option<TableResult<V>>> = ops.iter().map(|_| None).collect();
        for (idx, ixs) in self.group_by_shard(ops) {
            let results = self.shard_batch_sync(idx, ops, &ixs);
            for (slot, r) in ixs.into_iter().zip(results) {
                out[slot] = Some(r);
            }
        }
        out.into_iter()
            .map(|r| r.expect("every op belongs to exactly one shard group"))
            .collect()
    }

    /// Asynchronous [`Self::apply_batch`]: parks the *task* (not a
    /// thread) while a posted shard group awaits service.
    ///
    /// Cancel-safe in the PR-5 sense: dropping the future withdraws any
    /// still-`POSTED` record, so unclaimed ops are never applied. Shard
    /// groups that completed before the drop (earlier shards of the
    /// batch, or a group a combiner had already claimed) stay applied —
    /// per-group all-or-nothing, never partial within a group, and
    /// never twice.
    pub async fn apply_batch_async(&self, ops: &[TableOp<K, V>]) -> Vec<TableResult<V>> {
        let mut out: Vec<Option<TableResult<V>>> = ops.iter().map(|_| None).collect();
        for (idx, ixs) in self.group_by_shard(ops) {
            let results = self.shard_batch_async(idx, ops, &ixs).await;
            for (slot, r) in ixs.into_iter().zip(results) {
                out[slot] = Some(r);
            }
        }
        out.into_iter()
            .map(|r| r.expect("every op belongs to exactly one shard group"))
            .collect()
    }

    /// Groups op indices by shard, in ascending shard order (sorted
    /// iteration keeps lock acquisition order deterministic and results
    /// reproducible under contention).
    fn group_by_shard(&self, ops: &[TableOp<K, V>]) -> BTreeMap<usize, Vec<usize>> {
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, op) in ops.iter().enumerate() {
            let key = match op {
                TableOp::Get(k) | TableOp::Put(k, _) | TableOp::Remove(k) => k,
            };
            groups.entry(self.shard_index(key)).or_default().push(i);
        }
        groups
    }

    /// One shard group, synchronously: trylock fast path, else post and
    /// park the thread (register → re-check → park, the lost-wakeup-free
    /// `WakerSet` protocol).
    fn shard_batch_sync(
        &self,
        idx: usize,
        ops: &[TableOp<K, V>],
        ixs: &[usize],
    ) -> Vec<TableResult<V>> {
        let mut slot = PostSlot {
            table: self,
            idx,
            rec: None,
        };
        if let Some(out) = self.batch_step(&mut slot, ops, ixs) {
            return out;
        }
        let waker = core::task::Waker::from(Arc::new(Unparker(std::thread::current())));
        loop {
            self.wakerset().register(&waker);
            if let Some(out) = self.batch_step(&mut slot, ops, ixs) {
                return out;
            }
            std::thread::park();
        }
    }

    /// One shard group, asynchronously: the same step function, parked
    /// on the task's waker. The `PostSlot` drop guard is what withdraws
    /// the record if the future is dropped mid-wait.
    async fn shard_batch_async(
        &self,
        idx: usize,
        ops: &[TableOp<K, V>],
        ixs: &[usize],
    ) -> Vec<TableResult<V>> {
        let mut slot = PostSlot {
            table: self,
            idx,
            rec: None,
        };
        let mut waiter = trace::Waiter::new();
        std::future::poll_fn(move |cx| {
            if let Some(out) = self.batch_step(&mut slot, ops, ixs) {
                waiter.finish("shard.lock_wait");
                return Poll::Ready(out);
            }
            waiter.arm(trace::current());
            self.wakerset().register_current(cx);
            match self.batch_step(&mut slot, ops, ixs) {
                Some(out) => {
                    waiter.finish("shard.lock_wait");
                    Poll::Ready(out)
                }
                None => Poll::Pending,
            }
        })
        .await
    }

    /// One bounded attempt to finish the shard group `ixs` (indices into
    /// the caller's batch `ops`); never blocks.
    ///
    /// - Not yet posted: trylock → apply own ops *by reference* + service
    ///   the list (fast path, no clones beyond what lands in the map); on
    ///   a busy shard, clone the group into a record, post it, and report
    ///   "not done".
    /// - Posted: finished if a combiner marked it `DONE`; otherwise
    ///   trylock → become the combiner ourselves (which services our own
    ///   record — by the module invariant it *must* be `DONE` once we
    ///   hold the lock and the list is drained).
    fn batch_step(
        &self,
        slot: &mut PostSlot<'_, K, V, L>,
        ops: &[TableOp<K, V>],
        ixs: &[usize],
    ) -> Option<Vec<TableResult<V>>> {
        let idx = slot.idx;
        if let Some(rec) = &slot.rec {
            if rec.state.load(Ordering::Acquire) != DONE {
                let mut g = self.try_lock_shard_idx(idx)?;
                self.combine_locked(idx, &mut g);
            }
            let rec = slot.rec.take().expect("checked above");
            return Some(rec.take_results());
        }
        match self.try_lock_shard_idx(idx) {
            Some(mut g) => {
                if hemlock_obs::enabled() {
                    hemlock_obs::registry()
                        .shard_batch_size
                        .record(ixs.len() as u64);
                }
                let out = ixs.iter().map(|&i| apply_one(&mut g, &ops[i])).collect();
                self.combine_locked(idx, &mut g);
                Some(out)
            }
            None => {
                // Clone the group to post it; a panicking `Clone` turns
                // that op into a posted `None` (answered `Panicked`),
                // keeping per-op isolation on the publication path too.
                let cloned: Vec<Option<TableOp<K, V>>> = ixs
                    .iter()
                    .map(|&i| {
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ops[i].clone()))
                            .ok()
                    })
                    .collect();
                let rec = Arc::new(PubRecord::new(cloned));
                self.shard_pubs(idx).push(Arc::clone(&rec));
                slot.rec = Some(rec);
                None
            }
        }
    }

    /// Services shard `idx`'s publication list while holding its data
    /// lock: claim each pending record, apply its ops, publish results,
    /// store `DONE` — all before `g` is released (whose drop then
    /// notifies every parked poster through the `WakerSet`). Records
    /// withdrawn by a cancelled poster lose the claim CAS and are
    /// skipped without applying anything.
    fn combine_locked(&self, idx: usize, g: &mut ShardGuard<'_, K, V, L>) {
        for rec in self.shard_pubs(idx).drain() {
            if rec
                .state
                .compare_exchange(POSTED, CLAIMED, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                continue; // ABORTED: the poster withdrew before we claimed
            }
            if hemlock_obs::enabled() {
                hemlock_obs::registry()
                    .shard_batch_size
                    .record(rec.ops.len() as u64);
            }
            // Attributed to the POSTER's trace id, on the combiner's
            // thread: in the rendered trace the poster's `lock_wait`
            // overlaps this span on another track, which is exactly the
            // handoff the combining layer exists to show.
            let serve = trace::SyncSpan::start(rec.trace, "shard.combine_serve");
            let results = rec
                .ops
                .iter()
                .map(|op| match op {
                    Some(op) => apply_one(g, op),
                    None => TableResult::Panicked, // clone panicked at post
                })
                .collect();
            drop(serve);
            // Safety: we won the claim; the poster reads `results` only
            // after observing the `DONE` we store next (Release).
            unsafe { *rec.results.get() = results };
            rec.state.store(DONE, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemlock_core::hemlock::Hemlock;

    type Table<K, V> = ShardedTable<K, V, Hemlock>;

    /// Two distinct keys mapping to the same shard (found by probing).
    fn same_shard_pair<V>(t: &Table<u32, V>) -> (u32, u32) {
        for a in 0..256u32 {
            for b in (a + 1)..256u32 {
                if t.shard_index(&a) == t.shard_index(&b) {
                    return (a, b);
                }
            }
        }
        unreachable!("256 keys over few shards must collide");
    }

    #[test]
    fn batch_results_are_positional() {
        let t: Table<u32, u32> = ShardedTable::with_shards(4);
        let out = t.apply_batch(&[
            TableOp::Put(1, 10),
            TableOp::Put(2, 20),
            TableOp::Get(1),
            TableOp::Remove(2),
            TableOp::Get(2),
            TableOp::Put(1, 11),
        ]);
        assert_eq!(
            out,
            vec![
                TableResult::Prev(None),
                TableResult::Prev(None),
                TableResult::Value(Some(10)),
                TableResult::Prev(Some(20)),
                TableResult::Value(None),
                TableResult::Prev(Some(10)),
            ]
        );
        assert_eq!(t.get(&1), Some(11));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let t: Table<u32, u32> = ShardedTable::with_shards(2);
        assert!(t.apply_batch(&[]).is_empty());
        assert!(t.is_empty());
    }

    #[test]
    fn one_acquisition_per_shard_touched() {
        let t: Table<u32, u32> = ShardedTable::with_shards(8);
        let (a, b) = same_shard_pair(&t);
        t.reset_stats();
        // Two ops on one shard: exactly one acquisition.
        t.apply_batch(&[TableOp::Put(a, 1), TableOp::Put(b, 2)]);
        assert_eq!(t.stats().acquisitions(), 1);
    }

    #[test]
    fn same_key_twice_in_one_batch_sees_its_own_writes() {
        let t: Table<u32, u32> = ShardedTable::with_shards(2);
        let out = t.apply_batch(&[
            TableOp::Put(7, 1),
            TableOp::Put(7, 2),
            TableOp::Get(7),
            TableOp::Remove(7),
            TableOp::Get(7),
        ]);
        assert_eq!(
            out,
            vec![
                TableResult::Prev(None),
                TableResult::Prev(Some(1)),
                TableResult::Value(Some(2)),
                TableResult::Prev(Some(2)),
                TableResult::Value(None),
            ]
        );
    }

    #[test]
    fn panicking_op_is_isolated_from_its_neighbors() {
        #[derive(Debug, PartialEq, Eq)]
        struct Val(u32);
        impl Clone for Val {
            fn clone(&self) -> Self {
                assert!(self.0 != 666, "poisoned value");
                Val(self.0)
            }
        }
        let t: ShardedTable<u32, Val, Hemlock> = ShardedTable::with_shards(1);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the expected panic
        let out = t.apply_batch(&[
            TableOp::Put(1, Val(1)),
            TableOp::Put(2, Val(666)), // clone panics on application
            TableOp::Put(3, Val(3)),
        ]);
        std::panic::set_hook(hook);
        assert_eq!(out[0], TableResult::Prev(None));
        assert_eq!(out[1], TableResult::Panicked);
        assert_eq!(out[2], TableResult::Prev(None));
        // Neighbors landed; the poisoned op did not.
        assert!(t.with(&1, |v| v.is_some()));
        assert!(t.with(&2, |v| v.is_none()));
        assert!(t.with(&3, |v| v.is_some()));
    }

    #[test]
    fn contending_batches_all_land() {
        use std::sync::Arc as StdArc;
        // One shard: every batch collides, so the publication path (post,
        // combine, park) is exercised hard. Disjoint key ranges make any
        // lost or doubled op visible in the final count.
        let t: StdArc<Table<u32, u32>> = StdArc::new(ShardedTable::with_shards(1));
        let threads = 4u32;
        let rounds = if cfg!(miri) { 5 } else { 200 };
        let per_batch = 8u32;
        std::thread::scope(|s| {
            for tid in 0..threads {
                let t = StdArc::clone(&t);
                s.spawn(move || {
                    for r in 0..rounds {
                        let base = tid * 1_000_000 + r * per_batch;
                        let ops: Vec<TableOp<u32, u32>> = (0..per_batch)
                            .map(|i| TableOp::Put(base + i, tid))
                            .collect();
                        let out = t.apply_batch(&ops);
                        assert!(out.iter().all(|r| *r == TableResult::Prev(None)));
                    }
                });
            }
        });
        assert_eq!(t.len(), (threads * rounds * per_batch) as usize);
    }

    #[test]
    fn a_batch_parked_behind_a_point_guard_completes() {
        use std::sync::Arc as StdArc;
        let t: StdArc<Table<u32, u32>> = StdArc::new(ShardedTable::with_shards(1));
        let held = t.guard(&1); // point-op holder: never services the list
        let t2 = StdArc::clone(&t);
        let poster =
            std::thread::spawn(move || t2.apply_batch(&[TableOp::Put(1, 10), TableOp::Put(2, 20)]));
        // Give the poster time to post and park behind the held guard.
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(held); // release → notify: the poster wakes, combines itself
        let out = poster.join().unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(t.get(&1), Some(10));
        assert_eq!(t.get(&2), Some(20));
    }

    #[test]
    fn async_batch_roundtrip_and_sync_async_mix() {
        use hemlock_harness::executor::TaskPool;
        use std::sync::Arc as StdArc;
        let t: StdArc<Table<u32, u64>> = StdArc::new(ShardedTable::with_shards(1));
        let pool = TaskPool::new(2);
        let rounds = if cfg!(miri) { 5 } else { 100 };
        let handles: Vec<_> = (0..2u64)
            .map(|task| {
                let t = StdArc::clone(&t);
                pool.spawn(async move {
                    for r in 0..rounds {
                        let base = (task * 1_000_000 + r * 4) as u32;
                        let ops: Vec<TableOp<u32, u64>> =
                            (0..4).map(|i| TableOp::Put(base + i, task)).collect();
                        let out = t.apply_batch_async(&ops).await;
                        assert_eq!(out.len(), 4);
                    }
                })
            })
            .collect();
        std::thread::scope(|s| {
            let t = StdArc::clone(&t);
            s.spawn(move || {
                for r in 0..rounds {
                    let base = (2_000_000 + r * 4) as u32;
                    let ops: Vec<TableOp<u32, u64>> =
                        (0..4).map(|i| TableOp::Put(base + i, 2)).collect();
                    t.apply_batch(&ops);
                }
            });
        });
        for h in handles {
            h.join();
        }
        assert_eq!(t.len(), (3 * rounds * 4) as usize);
    }

    #[test]
    fn cancelled_async_batch_is_withdrawn_not_applied() {
        use std::future::Future;
        use std::sync::Arc as StdArc;
        use std::task::{Context, Wake, Waker};
        struct Noop;
        impl Wake for Noop {
            fn wake(self: StdArc<Self>) {}
        }
        let t: Table<u32, u32> = ShardedTable::with_shards(1);
        let held = t.guard(&9); // keep the shard busy so the batch posts
        {
            let fut = t.apply_batch_async(&[TableOp::Put(1, 1), TableOp::Put(2, 2)]);
            let mut fut = Box::pin(fut);
            let waker = Waker::from(StdArc::new(Noop));
            assert!(fut
                .as_mut()
                .poll(&mut Context::from_waker(&waker))
                .is_pending());
            // Drop the pending future: the posted record is withdrawn.
        }
        drop(held);
        // The cancelled ops were never applied…
        assert_eq!(t.get(&1), None);
        assert_eq!(t.get(&2), None);
        // …and the shard is fully serviceable afterwards (no stale
        // record wedges later combiners).
        let out = t.apply_batch(&[TableOp::Put(1, 10), TableOp::Get(1)]);
        assert_eq!(out[1], TableResult::Value(Some(10)));
    }

    #[test]
    fn concurrent_clear_never_splits_a_shard_group() {
        use std::sync::atomic::{AtomicBool, Ordering as AO};
        use std::sync::Arc as StdArc;
        // Satellite fix test: `clear` cuts per shard — a batch's
        // same-shard group (applied under one shard lock) must never be
        // observed half-cleared. Writer pairs (a, b) always carry the
        // same round value; a reader batch on the same shard must see
        // the pair equal (both absent or both the same round).
        let t: StdArc<Table<u32, u32>> = StdArc::new(ShardedTable::with_shards(4));
        let (a, b) = same_shard_pair(&t);
        let stop = StdArc::new(AtomicBool::new(false));
        let rounds = if cfg!(miri) { 20 } else { 2_000 };
        std::thread::scope(|s| {
            {
                let (t, stop) = (StdArc::clone(&t), StdArc::clone(&stop));
                s.spawn(move || {
                    let mut r = 0u32;
                    while !stop.load(AO::Relaxed) {
                        t.apply_batch(&[TableOp::Put(a, r), TableOp::Put(b, r)]);
                        r = r.wrapping_add(1);
                    }
                });
            }
            {
                let (t, stop) = (StdArc::clone(&t), StdArc::clone(&stop));
                s.spawn(move || {
                    while !stop.load(AO::Relaxed) {
                        t.clear();
                    }
                });
            }
            for _ in 0..rounds {
                let out = t.apply_batch(&[TableOp::Get(a), TableOp::Get(b)]);
                let (va, vb) = match (&out[0], &out[1]) {
                    (TableResult::Value(x), TableResult::Value(y)) => (x, y),
                    other => panic!("unexpected results: {other:?}"),
                };
                assert_eq!(va, vb, "shard cut split a same-shard batch group");
            }
            stop.store(true, AO::Relaxed);
        });
    }
}
