//! Per-shard contention statistics.
//!
//! Every shard acquisition bumps a relaxed counter; acquisitions that found
//! the shard's lock already engaged (detected through the best-effort
//! [`RawLock::is_locked_hint`](hemlock_core::RawLock::is_locked_hint)
//! probe, where the algorithm exposes one) count as *contended*. The
//! numbers are a census, not a synchronization mechanism: they answer "did
//! striping actually spread the load?" and feed the `shardkv` benchmark's
//! contention column.

use core::sync::atomic::{AtomicU64, Ordering};
use hemlock_core::pad::CachePadded;

/// Live counters attached to one shard (padded so the census never shares a
/// line with a neighboring shard's).
#[derive(Debug, Default)]
pub struct ShardStats {
    inner: CachePadded<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    acquisitions: AtomicU64,
    contended: AtomicU64,
}

impl ShardStats {
    /// Notes one acquisition of the owning shard's lock; `contended` when
    /// the lock appeared engaged at acquisition time.
    #[inline]
    pub fn note_acquisition(&self, contended: bool) {
        self.inner.acquisitions.fetch_add(1, Ordering::Relaxed);
        if contended {
            self.inner.contended.fetch_add(1, Ordering::Relaxed);
        }
        // Mirror into the workspace registry (the per-shard census above is
        // unconditional — table tests and the shardkv contention column rely
        // on exact counts with no obs setup).
        if hemlock_obs::enabled() {
            let reg = hemlock_obs::registry();
            reg.shard_acquisitions.inc();
            if contended {
                reg.shard_contended.inc();
            }
        }
    }

    /// Snapshot of this shard's counters.
    pub fn snapshot(&self) -> ShardSnapshot {
        ShardSnapshot {
            acquisitions: self.inner.acquisitions.load(Ordering::Relaxed),
            contended: self.inner.contended.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the counters (between benchmark phases).
    pub fn reset(&self) {
        self.inner.acquisitions.store(0, Ordering::Relaxed);
        self.inner.contended.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time view of one shard's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Lock acquisitions against this shard.
    pub acquisitions: u64,
    /// Acquisitions that found the lock already engaged (best-effort; zero
    /// when the algorithm's lock body cannot be probed).
    pub contended: u64,
}

/// Whole-table statistics: one [`ShardSnapshot`] per shard plus aggregates.
#[derive(Clone, Debug, Default)]
pub struct TableStats {
    /// Per-shard snapshots, in shard order.
    pub shards: Vec<ShardSnapshot>,
}

impl TableStats {
    /// Total acquisitions across all shards.
    pub fn acquisitions(&self) -> u64 {
        self.shards.iter().map(|s| s.acquisitions).sum()
    }

    /// Total contended acquisitions across all shards.
    pub fn contended(&self) -> u64 {
        self.shards.iter().map(|s| s.contended).sum()
    }

    /// Fraction of acquisitions that were contended, in `[0, 1]`.
    pub fn contended_fraction(&self) -> f64 {
        let total = self.acquisitions();
        if total == 0 {
            0.0
        } else {
            self.contended() as f64 / total as f64
        }
    }

    /// Busiest shard's acquisition count.
    pub fn max_shard_acquisitions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.acquisitions)
            .max()
            .unwrap_or(0)
    }

    /// Ratio of the busiest shard to the ideal uniform share (1.0 = perfect
    /// balance; large values mean the hash is clumping keys onto few
    /// shards). Returns 0 when nothing was acquired.
    pub fn imbalance(&self) -> f64 {
        let total = self.acquisitions();
        if total == 0 || self.shards.is_empty() {
            return 0.0;
        }
        let ideal = total as f64 / self.shards.len() as f64;
        self.max_shard_acquisitions() as f64 / ideal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_counts_and_aggregates() {
        let a = ShardStats::default();
        let b = ShardStats::default();
        a.note_acquisition(false);
        a.note_acquisition(true);
        b.note_acquisition(false);
        let stats = TableStats {
            shards: vec![a.snapshot(), b.snapshot()],
        };
        assert_eq!(stats.acquisitions(), 3);
        assert_eq!(stats.contended(), 1);
        assert!((stats.contended_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(stats.max_shard_acquisitions(), 2);
        // 2 acquisitions on the busiest of 2 shards, ideal share 1.5.
        assert!((stats.imbalance() - 2.0 / 1.5).abs() < 1e-12);
        a.reset();
        assert_eq!(a.snapshot(), ShardSnapshot::default());
    }

    #[test]
    fn empty_stats_are_calm() {
        let stats = TableStats::default();
        assert_eq!(stats.acquisitions(), 0);
        assert_eq!(stats.contended_fraction(), 0.0);
        assert_eq!(stats.imbalance(), 0.0);
    }
}
