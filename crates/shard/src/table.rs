//! The sharded lock table: [`ShardedTable`].
//!
//! Keys hash onto a fixed, power-of-two array of shards; each shard is a
//! `HashMap` behind its own [`Mutex<_, L>`](hemlock_core::Mutex). Because
//! the stripe count never changes, a shard's lock is the *only*
//! synchronization any operation takes — no global epoch, no directory
//! lock — so aggregate throughput scales with the number of independent
//! shards until the machine, not the lock, is the bottleneck. A compact
//! lock algorithm (Hemlock's one-word body) is what makes large stripe
//! counts affordable; [`ShardedTable::footprint_bytes`] prices exactly
//! that, straight from the algorithm's [`LockMeta`].
//!
//! Read-only operations ([`ShardedTable::get`], [`ShardedTable::with`],
//! [`ShardedTable::contains_key`], iteration, sizing) take the shard in
//! *read* mode via [`RawLock::read_lock`]: with an RW-capable algorithm
//! (`LockMeta::rw`, e.g. `hemlock_rw::HemlockRw` or any `rw.*` catalog
//! entry) readers of a hot shard are admitted concurrently and only
//! writers serialize; with an exclusive-only algorithm the read mode
//! degrades to the ordinary lock, so nothing changes for existing users.

use crate::stats::{ShardStats, TableStats};
use core::mem::ManuallyDrop;
use core::ops::{Deref, DerefMut};
use core::task::Poll;
use hemlock_core::hemlock::Hemlock;
use hemlock_core::meta::LockMeta;
use hemlock_core::raw::{RawLock, RawTryLock};
use hemlock_core::wakerset::WakerSet;
use hemlock_core::{Mutex, MutexGuard, ReadGuard};
use hemlock_obs::trace;
use std::borrow::Borrow;
use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};

/// One stripe: a map plus its lock, contention census, and the
/// flat-combining publication list ([`crate::batch`]).
struct Shard<K, V, L: RawLock> {
    map: Mutex<HashMap<K, V>, L>,
    stats: ShardStats,
    /// Posted-but-unserviced batch groups awaiting this shard's lock
    /// holder; drained only by the batch paths (see `crate::batch`).
    pubs: crate::batch::PubList<K, V>,
}

impl<K, V, L: RawLock> Default for Shard<K, V, L> {
    fn default() -> Self {
        Self {
            map: Mutex::new(HashMap::new()),
            stats: ShardStats::default(),
            pubs: crate::batch::PubList::default(),
        }
    }
}

/// A concurrent keyed table striped over independently locked shards.
///
/// The lock algorithm `L` is a type parameter exactly as in
/// [`Mutex<T, L>`](hemlock_core::Mutex); benchmark binaries select it at
/// runtime by monomorphizing through `hemlock_locks::catalog::with_lock_type`
/// (see `shardkv`), so any catalog entry can guard the shards.
///
/// ```
/// use hemlock_shard::ShardedTable;
/// use hemlock_core::hemlock::Hemlock;
///
/// let t: ShardedTable<u64, u64, Hemlock> = ShardedTable::with_shards(16);
/// std::thread::scope(|s| {
///     for tid in 0..4u64 {
///         let t = &t;
///         s.spawn(move || {
///             for i in 0..100 {
///                 t.insert(tid * 1_000 + i, i);
///             }
///         });
///     }
/// });
/// assert_eq!(t.len(), 400);
/// ```
pub struct ShardedTable<K, V, L: RawLock = Hemlock> {
    shards: Box<[Shard<K, V, L>]>,
    mask: usize,
    hasher: RandomState,
    /// Parked asynchronous waiters (the `*_async` operations). One set for
    /// the whole table — a per-shard set would cost tens of bytes per
    /// shard, working against the compact-footprint story; the price is
    /// that a release may spuriously wake a waiter of another shard, which
    /// simply re-tries. Every guard release notifies (see [`ShardGuard`]),
    /// so synchronous and asynchronous users can mix freely on one shard
    /// without lost wakeups.
    wakers: WakerSet,
}

impl<K: Hash + Eq, V, L: RawLock> Default for ShardedTable<K, V, L> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, L: RawLock> core::fmt::Debug for ShardedTable<K, V, L> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShardedTable")
            .field("lock", &L::META.name)
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

impl<K: Hash + Eq, V, L: RawLock> ShardedTable<K, V, L> {
    /// Creates a table with a shard count sized to the machine: the next
    /// power of two above 4× the available parallelism (at least 16), so
    /// that even an adversarial schedule leaves most acquisitions
    /// uncontended.
    pub fn new() -> Self {
        let hw = std::thread::available_parallelism().map_or(4, |n| n.get());
        Self::with_shards((4 * hw).max(16))
    }

    /// Creates a table with `shards` stripes, rounded up to a power of two
    /// (and at least 1). The count is fixed for the table's lifetime — the
    /// resize-free design is what keeps every operation single-lock.
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        Self {
            shards: (0..n).map(|_| Shard::default()).collect(),
            mask: n - 1,
            hasher: RandomState::new(),
            wakers: WakerSet::new(),
        }
    }

    /// Number of shards (always a power of two).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The stripe `key` maps to, in `0..self.shards()`. Accepts any
    /// borrowed form of the key (`Borrow` guarantees equal hashes, so a
    /// `&[u8]` probe lands on the same shard as its owning `Box<[u8]>`).
    pub fn shard_index<Q>(&self, key: &Q) -> usize
    where
        K: Borrow<Q>,
        Q: Hash + ?Sized,
    {
        // Power-of-two masking keeps this a single AND; SipHash (the std
        // default) already mixes the low bits well.
        (self.hasher.hash_one(key) as usize) & self.mask
    }

    /// Locks shard `idx` directly, recording the contention census.
    fn lock_shard(&self, idx: usize) -> ShardGuard<'_, K, V, L> {
        let shard = &self.shards[idx];
        let contended = shard.map.raw().is_locked_hint() == Some(true);
        let guard = shard.map.lock();
        // Count after acquiring: a panicking probe can't skew the census.
        shard.stats.note_acquisition(contended);
        ShardGuard::wrap(guard, &self.wakers)
    }

    /// Locks shard `idx` in *read* mode, recording the contention census.
    /// With an RW-capable `L` ([`LockMeta::rw`]) concurrent readers of the
    /// same shard are admitted together; otherwise this is `lock_shard`
    /// with a read-only guard.
    fn read_shard(&self, idx: usize) -> ShardReadGuard<'_, K, V, L>
    where
        K: Sync,
        V: Sync,
    {
        let shard = &self.shards[idx];
        // Census: on an RW-capable lock an engaged hint usually means
        // *coexisting readers* — which this acquisition joins without
        // waiting — so counting it as contended would invert the statistic
        // exactly when sharing works. The indicator cannot distinguish a
        // present writer generically, so RW read acquisitions are recorded
        // uncontended; exclusive-only locks keep the engaged-hint probe.
        let contended = !L::META.rw && shard.map.raw().is_locked_hint() == Some(true);
        let guard = shard.map.read();
        shard.stats.note_acquisition(contended);
        ShardReadGuard::wrap(guard, &self.wakers)
    }

    /// Acquires the shard holding `key` in read mode, returning a shared
    /// guard over that shard's whole map — the read-side counterpart of
    /// [`Self::guard`] for multi-probe read-only critical sections.
    pub fn read_guard<Q>(&self, key: &Q) -> ShardReadGuard<'_, K, V, L>
    where
        K: Borrow<Q> + Sync,
        Q: Hash + ?Sized,
        V: Sync,
    {
        self.read_shard(self.shard_index(key))
    }

    /// Acquires shard `idx` (for whole-table maintenance such as draining
    /// one stripe at a time). Panics when `idx >= self.shards()`.
    pub fn guard_shard(&self, idx: usize) -> ShardGuard<'_, K, V, L> {
        assert!(idx < self.shards.len(), "shard index out of range");
        self.lock_shard(idx)
    }

    /// Acquires the shard holding `key`, returning a guard over that
    /// shard's whole map. This is the primitive the closure APIs build on;
    /// use it directly for multi-operation critical sections on one shard
    /// (e.g. check-then-insert without a second hash).
    pub fn guard<Q>(&self, key: &Q) -> ShardGuard<'_, K, V, L>
    where
        K: Borrow<Q>,
        Q: Hash + ?Sized,
    {
        self.lock_shard(self.shard_index(key))
    }

    /// Inserts or overwrites, returning the previous value.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.guard(&key).insert(key, value)
    }

    /// Removes `key`, returning the value it held.
    pub fn remove<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.guard(key).remove(key)
    }

    /// True when `key` is present (shard taken in read mode).
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q> + Sync,
        Q: Hash + Eq + ?Sized,
        V: Sync,
    {
        self.read_guard(key).contains_key(key)
    }

    /// Runs `f` on the slot for `key` (shared view) under the shard lock,
    /// taken in *read* mode: when `L` is RW-capable, concurrent `with`/
    /// [`Self::get`] calls on the same shard proceed together and only
    /// writers ([`Self::guard`], [`Self::insert`], …) exclude them.
    pub fn with<Q, R>(&self, key: &Q, f: impl FnOnce(Option<&V>) -> R) -> R
    where
        K: Borrow<Q> + Sync,
        Q: Hash + Eq + ?Sized,
        V: Sync,
    {
        f(self.read_guard(key).get(key))
    }

    /// Read-modify-write on the slot for `key` under the shard lock:
    /// `f` receives the current slot (`None` when absent) and may fill,
    /// replace, or empty it. Returns `f`'s result. If `f` unwinds, the
    /// slot's content at the moment of the panic is preserved in the table
    /// (the entry does not vanish) before the panic propagates.
    pub fn update<R>(&self, key: K, f: impl FnOnce(&mut Option<V>) -> R) -> R {
        let mut g = self.guard(&key);
        update_slot(&mut g, key, f)
    }

    /// Total entries, summed shard by shard (each shard read-locked
    /// briefly; the answer is exact only while no writer runs
    /// concurrently).
    pub fn len(&self) -> usize
    where
        K: Sync,
        V: Sync,
    {
        (0..self.shards.len())
            .map(|i| self.read_shard(i).len())
            .sum()
    }

    /// True when every shard is empty (same caveat as [`Self::len`]).
    pub fn is_empty(&self) -> bool
    where
        K: Sync,
        V: Sync,
    {
        (0..self.shards.len()).all(|i| self.read_shard(i).is_empty())
    }

    /// Removes every entry, **one shard at a time** — there is no
    /// table-wide consistent cut. A concurrent writer may repopulate
    /// already-cleared shards before later shards are reached, so the
    /// table is only guaranteed empty at return if no writer ran
    /// concurrently. What *is* guaranteed is per-shard atomicity: each
    /// shard transitions from its current contents to empty under its own
    /// lock, so operations that complete within one shard (point ops, a
    /// batch's same-shard group) are never observed half-cleared.
    pub fn clear(&self) {
        for i in 0..self.shards.len() {
            self.lock_shard(i).clear();
        }
    }

    /// Drains the whole table into a vector, shard by shard (unordered).
    /// Same cut semantics as [`Self::clear`]: per-shard atomic, no
    /// table-wide snapshot — entries written concurrently to
    /// already-drained shards are missed, entries written to
    /// not-yet-drained shards are included.
    pub fn drain(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        for i in 0..self.shards.len() {
            out.extend(std::mem::take(&mut *self.lock_shard(i)));
        }
        out
    }

    /// Visits every entry, one shard *read* lock at a time. Entries
    /// inserted or removed concurrently in not-yet-visited shards may or
    /// may not be seen — the usual sharded-iteration contract.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V))
    where
        K: Sync,
        V: Sync,
    {
        for i in 0..self.shards.len() {
            let g = self.read_shard(i);
            for (k, v) in g.iter() {
                f(k, v);
            }
        }
    }

    /// Snapshot of the per-shard contention census.
    pub fn stats(&self) -> TableStats {
        TableStats {
            shards: self.shards.iter().map(|s| s.stats.snapshot()).collect(),
        }
    }

    /// Zeroes the contention census (between benchmark phases).
    pub fn reset_stats(&self) {
        for s in self.shards.iter() {
            s.stats.reset();
        }
    }

    /// The shard-lock algorithm's descriptor.
    pub fn lock_meta(&self) -> LockMeta {
        L::META
    }

    /// Quiescent lock-space cost of this table when used by `threads`
    /// threads: `shards` lock bodies plus padded per-thread state, from
    /// [`LockMeta::footprint_bytes`] — plus the flat-combining layer,
    /// priced the same way: one compact Hemlock word guarding each
    /// shard's publication list, and the list header itself. (Posted
    /// records are transient, like engagement queue elements, and are
    /// excluded — this is the *resting* space cost the paper's Table 1
    /// compares.)
    pub fn footprint_bytes(&self, threads: usize) -> usize {
        let n = self.shards.len();
        L::META.footprint_bytes(n, threads)
            + Hemlock::META.footprint_bytes(n, 0)
            + n * core::mem::size_of::<Vec<()>>()
    }
}

impl<K, V, L: RawLock> ShardedTable<K, V, L> {
    /// Shard `idx`'s publication list (the batch paths' combining seam).
    /// Unbounded on `K`/`V` so the batch layer's drop guards can
    /// withdraw records without carrying the table's op bounds.
    pub(crate) fn shard_pubs(&self, idx: usize) -> &crate::batch::PubList<K, V> {
        &self.shards[idx].pubs
    }

    /// The table-wide waiter registry, shared by the async point ops and
    /// the batch posters (sync and async alike).
    pub(crate) fn wakerset(&self) -> &WakerSet {
        &self.wakers
    }
}

impl<K: Hash + Eq, V: Clone, L: RawLock> ShardedTable<K, V, L> {
    /// Point lookup (clones the value out so the shard lock is held only
    /// for the probe). The shard is taken in *read* mode: with an
    /// RW-capable `L`, concurrent `get`s on the same shard are admitted
    /// together.
    pub fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q> + Sync,
        Q: Hash + Eq + ?Sized,
        V: Sync,
    {
        self.read_guard(key).get(key).cloned()
    }
}

impl<K: Hash + Eq, V, L: RawTryLock> ShardedTable<K, V, L> {
    /// Non-blocking [`Self::guard`]: `None` when the shard's lock is busy
    /// (counted as a contended acquisition in the census).
    pub fn try_guard(&self, key: &K) -> Option<ShardGuard<'_, K, V, L>> {
        self.try_lock_shard_idx(self.shard_index(key))
    }

    /// Non-blocking [`Self::with`]: runs `f` on the slot for `key` only if
    /// the owning shard's lock is free right now; `None` (without running
    /// `f`) when it is busy. The bounded-wait building block for callers
    /// that must not stall behind a slow shard holder.
    pub fn try_with<Q, R>(&self, key: &Q, f: impl FnOnce(Option<&V>) -> R) -> Option<R>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let g = self.try_lock_shard_idx(self.shard_index(key))?;
        Some(f(g.get(key)))
    }

    /// Timed [`Self::guard`]: gives up once `timeout` elapses (counted as
    /// a contended acquisition in the census), after which the waiter is
    /// guaranteed never to receive the shard lock from this call. Only
    /// meaningful when `L` advertises
    /// [`LockMeta::abortable`](hemlock_core::LockMeta).
    pub fn try_guard_for<Q>(
        &self,
        key: &Q,
        timeout: std::time::Duration,
    ) -> Option<ShardGuard<'_, K, V, L>>
    where
        K: Borrow<Q>,
        Q: Hash + ?Sized,
    {
        let shard = &self.shards[self.shard_index(key)];
        match shard.map.try_lock_for(timeout) {
            Some(guard) => {
                shard.stats.note_acquisition(false);
                Some(ShardGuard::wrap(guard, &self.wakers))
            }
            None => {
                shard.stats.note_acquisition(true);
                None
            }
        }
    }

    /// Timed [`Self::read_guard`]: the shared-mode counterpart of
    /// [`Self::try_guard_for`]. With an RW-capable `L`, concurrent timed
    /// readers of a hot shard are admitted together and a timed-out reader
    /// genuinely withdraws from the read indicator.
    pub fn try_read_guard_for<Q>(
        &self,
        key: &Q,
        timeout: std::time::Duration,
    ) -> Option<ShardReadGuard<'_, K, V, L>>
    where
        K: Borrow<Q> + Sync,
        Q: Hash + ?Sized,
        V: Sync,
    {
        let shard = &self.shards[self.shard_index(key)];
        match shard.map.try_read_for(timeout) {
            Some(guard) => {
                shard.stats.note_acquisition(false);
                Some(ShardReadGuard::wrap(guard, &self.wakers))
            }
            None => {
                shard.stats.note_acquisition(true);
                None
            }
        }
    }

    /// Atomic read-modify-write over **two** slots that may live on
    /// different shards — the multi-shard transaction primitive. `f`
    /// receives both slots (`None` when absent) with [`Self::update`]'s
    /// fill/replace/empty semantics and panic-safety (slot contents at the
    /// moment of a panic are preserved).
    ///
    /// Deadlock freedom: the two shard locks are taken in **index order**
    /// — the lower-index shard blocking, the higher by *try-acquire with
    /// backoff* (on failure both are dropped and the attempt restarts), so
    /// two `with_two` calls with crossing key pairs can never hold-and-wait
    /// in opposite orders, and a blocking holder of the higher shard is
    /// never waited on while the lower is held longer than one trylock.
    /// Same-shard pairs degrade to a single guard. This protocol is
    /// model-checked: the **`proto.with-two`** scenario
    /// (`hemlock_simlock::protocols::twoshard`, explored exhaustively by
    /// `hemlock-model` and the `model-check` CI job) proves
    /// deadlock-freedom and `no-torn-pair` over every interleaving at
    /// small scope; an unordered blocking acquire
    /// (`TwoShardBug::BlockingUnordered`) is caught as the classic ABBA
    /// deadlock.
    ///
    /// Panics when `a == b` (two `&mut` views of one slot are
    /// ill-defined); route single-key updates through [`Self::update`].
    pub fn with_two<R>(
        &self,
        a: K,
        b: K,
        f: impl FnOnce(&mut Option<V>, &mut Option<V>) -> R,
    ) -> R {
        assert!(a != b, "with_two requires distinct keys");
        let (ia, ib) = (self.shard_index(&a), self.shard_index(&b));
        if ia == ib {
            let mut g = self.lock_shard(ia);
            return rmw_two_same_shard(&mut g, a, b, f);
        }
        // Cross-shard: ordered acquire, try + backoff on the second lock.
        let (lo, hi) = (ia.min(ib), ia.max(ib));
        let mut spin = hemlock_core::spin::SpinWait::new();
        let (g_lo, g_hi) = loop {
            let g_lo = self.lock_shard(lo);
            match self.shards[hi].map.try_lock() {
                Some(guard) => {
                    self.shards[hi].stats.note_acquisition(false);
                    break (g_lo, ShardGuard::wrap(guard, &self.wakers));
                }
                None => {
                    self.shards[hi].stats.note_acquisition(true);
                    drop(g_lo); // release before backing off: no hold-and-wait
                    spin.wait();
                }
            }
        };
        let (mut g_a, mut g_b) = if ia == lo { (g_lo, g_hi) } else { (g_hi, g_lo) };
        rmw_two_cross_shard(&mut g_a, &mut g_b, a, b, f)
    }

    /// One non-blocking attempt on shard `idx`, with census accounting —
    /// the building block every `*_async` poll and every batch step uses.
    pub(crate) fn try_lock_shard_idx(&self, idx: usize) -> Option<ShardGuard<'_, K, V, L>> {
        let shard = &self.shards[idx];
        match shard.map.try_lock() {
            Some(guard) => {
                shard.stats.note_acquisition(false);
                Some(ShardGuard::wrap(guard, &self.wakers))
            }
            None => {
                shard.stats.note_acquisition(true);
                None
            }
        }
    }

    /// One non-blocking *read-mode* attempt on shard `idx`
    /// ([`hemlock_core::RawTryLock::try_read_lock`]): with an RW-capable
    /// `L`, probes of a read-held shard succeed together.
    fn try_read_shard_idx(&self, idx: usize) -> Option<ShardReadGuard<'_, K, V, L>>
    where
        K: Sync,
        V: Sync,
    {
        let shard = &self.shards[idx];
        match shard.map.try_read() {
            Some(guard) => {
                shard.stats.note_acquisition(false);
                Some(ShardReadGuard::wrap(guard, &self.wakers))
            }
            None => {
                shard.stats.note_acquisition(true);
                None
            }
        }
    }

    /// Acquires the shard holding `key` **asynchronously**: the fast path
    /// is one raw trylock; a busy shard parks the task in the table's
    /// [`WakerSet`] (register → re-try → suspend, the lost-wakeup-free
    /// protocol) until some release notifies. Cancel-safe: dropping the
    /// future leaves at most a stale waker, which the next notification
    /// drains — it can never acquire anything.
    pub async fn guard_async<Q>(&self, key: &Q) -> ShardGuard<'_, K, V, L>
    where
        K: Borrow<Q>,
        Q: Hash + ?Sized,
    {
        let idx = self.shard_index(key);
        let mut waiter = trace::Waiter::new();
        std::future::poll_fn(|cx| match self.try_lock_shard_idx(idx) {
            Some(g) => {
                waiter.finish("shard.lock_wait");
                Poll::Ready(g)
            }
            None => {
                waiter.arm(trace::current());
                self.wakers.register_current(cx);
                match self.try_lock_shard_idx(idx) {
                    Some(g) => {
                        waiter.finish("shard.lock_wait");
                        Poll::Ready(g)
                    }
                    None => Poll::Pending,
                }
            }
        })
        .await
    }

    /// Asynchronous [`Self::read_guard`]: like [`Self::guard_async`] but
    /// in read mode, so RW-capable algorithms admit concurrent async
    /// readers of a hot shard together.
    pub async fn read_guard_async<Q>(&self, key: &Q) -> ShardReadGuard<'_, K, V, L>
    where
        K: Borrow<Q> + Sync,
        Q: Hash + ?Sized,
        V: Sync,
    {
        let idx = self.shard_index(key);
        let mut waiter = trace::Waiter::new();
        std::future::poll_fn(|cx| match self.try_read_shard_idx(idx) {
            Some(g) => {
                waiter.finish("shard.lock_wait");
                Poll::Ready(g)
            }
            None => {
                waiter.arm(trace::current());
                self.wakers.register_current(cx);
                match self.try_read_shard_idx(idx) {
                    Some(g) => {
                        waiter.finish("shard.lock_wait");
                        Poll::Ready(g)
                    }
                    None => Poll::Pending,
                }
            }
        })
        .await
    }

    /// Asynchronous [`Self::with`]: runs `f` on the slot for `key` under
    /// the shard's read mode, awaiting a busy shard instead of spinning a
    /// thread on it. `f` runs synchronously within one poll — the guard
    /// never lives across a suspension point.
    pub async fn with_async<Q, R>(&self, key: &Q, f: impl FnOnce(Option<&V>) -> R) -> R
    where
        K: Borrow<Q> + Sync,
        Q: Hash + Eq + ?Sized,
        V: Sync,
    {
        let g = self.read_guard_async(key).await;
        f(g.get(key))
    }

    /// Asynchronous [`Self::update`]: read-modify-write on `key`'s slot,
    /// awaiting the owning shard. Same fill/replace/empty and
    /// panic-preservation semantics.
    pub async fn update_async<R>(&self, key: K, f: impl FnOnce(&mut Option<V>) -> R) -> R {
        let mut g = self.guard_async(&key).await;
        update_slot(&mut g, key, f)
    }

    /// Asynchronous [`Self::with_two`]: the atomic two-slot RMW, awaiting
    /// both shards instead of spinning. Deadlock freedom carries over from
    /// the synchronous protocol — shards are taken in index order, the
    /// higher by trylock, and on failure **both** are dropped before the
    /// task parks (no hold-and-wait across a suspension, ever). Each full
    /// attempt runs within a single poll, so cancellation between attempts
    /// leaves no locks held.
    ///
    /// Panics when `a == b`, as [`Self::with_two`] does.
    pub async fn with_two_async<R>(
        &self,
        a: K,
        b: K,
        f: impl FnOnce(&mut Option<V>, &mut Option<V>) -> R,
    ) -> R {
        assert!(a != b, "with_two_async requires distinct keys");
        let (ia, ib) = (self.shard_index(&a), self.shard_index(&b));
        if ia == ib {
            let mut g = self.guard_async(&a).await;
            return rmw_two_same_shard(&mut g, a, b, f);
        }
        let (lo, hi) = (ia.min(ib), ia.max(ib));
        let mut waiter = trace::Waiter::new();
        let (g_lo, g_hi) = std::future::poll_fn(|cx| {
            // One ordered attempt per poll: lo by trylock (parking when
            // busy), then hi by trylock (dropping lo and parking when
            // busy). Registration always precedes the re-try, so the
            // releases that matter cannot slip between.
            let g_lo = match self.try_lock_shard_idx(lo) {
                Some(g) => g,
                None => {
                    waiter.arm(trace::current());
                    self.wakers.register_current(cx);
                    match self.try_lock_shard_idx(lo) {
                        Some(g) => g,
                        None => return Poll::Pending,
                    }
                }
            };
            match self.try_lock_shard_idx(hi) {
                Some(g_hi) => {
                    waiter.finish("shard.lock_wait");
                    Poll::Ready((g_lo, g_hi))
                }
                None => {
                    waiter.arm(trace::current());
                    self.wakers.register_current(cx);
                    match self.try_lock_shard_idx(hi) {
                        Some(g_hi) => {
                            waiter.finish("shard.lock_wait");
                            Poll::Ready((g_lo, g_hi))
                        }
                        None => {
                            drop(g_lo); // no hold-and-wait across the park
                            Poll::Pending
                        }
                    }
                }
            }
        })
        .await;
        let (mut g_a, mut g_b) = if ia == lo { (g_lo, g_hi) } else { (g_hi, g_lo) };
        rmw_two_cross_shard(&mut g_a, &mut g_b, a, b, f)
    }
}

impl<K: Hash + Eq, V: Clone, L: RawTryLock> ShardedTable<K, V, L> {
    /// Asynchronous [`Self::get`]: a point lookup that *awaits* a busy
    /// shard (read mode) instead of blocking a thread on it.
    pub async fn get_async<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q> + Sync,
        Q: Hash + Eq + ?Sized,
        V: Sync,
    {
        self.read_guard_async(key).await.get(key).cloned()
    }
}

/// The [`ShardedTable::update`] body, shared with the async variant:
/// fill/replace/empty semantics, slot contents preserved across a panic.
fn update_slot<K: Hash + Eq, V, R>(
    map: &mut HashMap<K, V>,
    key: K,
    f: impl FnOnce(&mut Option<V>) -> R,
) -> R {
    use std::collections::hash_map::Entry;
    match map.entry(key) {
        Entry::Vacant(e) => {
            let mut slot = None;
            let r = f(&mut slot);
            if let Some(v) = slot {
                e.insert(v);
            }
            r
        }
        Entry::Occupied(e) => {
            let (key, v) = e.remove_entry();
            let mut slot = Some(v);
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut slot)));
            // Restore before unwinding further: a panicking closure must
            // not delete the entry as a side effect.
            if let Some(v) = slot {
                map.insert(key, v);
            }
            match r {
                Ok(r) => r,
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    }
}

/// The same-shard [`ShardedTable::with_two`] body, shared with the async
/// variant: both slots taken out, run, restored (panic-safely).
fn rmw_two_same_shard<K: Hash + Eq, V, R>(
    map: &mut HashMap<K, V>,
    a: K,
    b: K,
    f: impl FnOnce(&mut Option<V>, &mut Option<V>) -> R,
) -> R {
    let mut slot_a = map.remove(&a);
    let mut slot_b = map.remove(&b);
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut slot_a, &mut slot_b)));
    if let Some(v) = slot_a {
        map.insert(a, v);
    }
    if let Some(v) = slot_b {
        map.insert(b, v);
    }
    match r {
        Ok(r) => r,
        Err(panic) => std::panic::resume_unwind(panic),
    }
}

/// The cross-shard [`ShardedTable::with_two`] body, shared with the async
/// variant (both shard guards already held, in index order).
fn rmw_two_cross_shard<K: Hash + Eq, V, R>(
    map_a: &mut HashMap<K, V>,
    map_b: &mut HashMap<K, V>,
    a: K,
    b: K,
    f: impl FnOnce(&mut Option<V>, &mut Option<V>) -> R,
) -> R {
    let mut slot_a = map_a.remove(&a);
    let mut slot_b = map_b.remove(&b);
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut slot_a, &mut slot_b)));
    if let Some(v) = slot_a {
        map_a.insert(a, v);
    }
    if let Some(v) = slot_b {
        map_b.insert(b, v);
    }
    match r {
        Ok(r) => r,
        Err(panic) => std::panic::resume_unwind(panic),
    }
}

/// RAII guard over one shard's map; releases the shard lock on drop, then
/// notifies the table's parked asynchronous waiters ([`WakerSet`]) — the
/// release-then-notify order is what keeps the sync and async user
/// populations of one shard free of lost wakeups.
///
/// Derefs to the shard's `HashMap`, so the full map API is available for
/// the duration of the critical section. `!Send`, like every guard in this
/// workspace: queue locks and Hemlock's Grant protocol require the unlock
/// to run on the acquiring thread.
pub struct ShardGuard<'a, K, V, L: RawLock> {
    /// `ManuallyDrop` so `Drop` can release the raw lock *before* the
    /// waker notification (plain field order would notify first, opening a
    /// park-after-notify window).
    guard: ManuallyDrop<MutexGuard<'a, HashMap<K, V>, L>>,
    wakers: &'a WakerSet,
    /// Trace id of the sampled request holding this guard (0 = untraced);
    /// drop emits a `shard.lock_hold` span covering acquire-to-release.
    trace: u64,
    /// Acquire timestamp for the hold span (unset when untraced).
    trace_t0: u64,
}

impl<'a, K, V, L: RawLock> ShardGuard<'a, K, V, L> {
    fn wrap(guard: MutexGuard<'a, HashMap<K, V>, L>, wakers: &'a WakerSet) -> Self {
        // One relaxed load when tracing is off (`trace::current`'s gate).
        let trace = trace::current();
        Self {
            guard: ManuallyDrop::new(guard),
            wakers,
            trace,
            trace_t0: if trace != 0 { trace::now_ns() } else { 0 },
        }
    }
}

impl<K, V, L: RawLock> Deref for ShardGuard<'_, K, V, L> {
    type Target = HashMap<K, V>;
    #[inline]
    fn deref(&self) -> &HashMap<K, V> {
        &self.guard
    }
}

impl<K, V, L: RawLock> DerefMut for ShardGuard<'_, K, V, L> {
    #[inline]
    fn deref_mut(&mut self) -> &mut HashMap<K, V> {
        &mut self.guard
    }
}

impl<K, V, L: RawLock> Drop for ShardGuard<'_, K, V, L> {
    #[inline]
    fn drop(&mut self) {
        // Safety: dropped exactly once, here; the field is never touched
        // again. Release first, notify second (see the type docs).
        unsafe { ManuallyDrop::drop(&mut self.guard) };
        self.wakers.notify_all();
        if self.trace != 0 {
            // Async kind: `with_two` drops its two guards in declaration
            // order, so hold intervals on one thread may overlap without
            // nesting — b/e events tolerate that, "X" events do not.
            trace::span_at(
                self.trace,
                "shard.lock_hold",
                self.trace_t0,
                trace::now_ns(),
                trace::SpanKind::Async,
            );
        }
    }
}

/// Shared RAII guard over one shard's map; releases the shard's read mode
/// on drop (then notifies async waiters, as [`ShardGuard`] does). `Deref`
/// only — with an RW-capable lock algorithm, several of these may view the
/// same shard concurrently, so no `&mut` is ever handed out. `!Send` like
/// [`ShardGuard`].
pub struct ShardReadGuard<'a, K, V, L: RawLock> {
    /// See [`ShardGuard::guard`] for the `ManuallyDrop` rationale.
    guard: ManuallyDrop<ReadGuard<'a, HashMap<K, V>, L>>,
    wakers: &'a WakerSet,
    /// See [`ShardGuard`]: hold-span trace id (0 = untraced) and start.
    trace: u64,
    trace_t0: u64,
}

impl<'a, K, V, L: RawLock> ShardReadGuard<'a, K, V, L> {
    fn wrap(guard: ReadGuard<'a, HashMap<K, V>, L>, wakers: &'a WakerSet) -> Self {
        let trace = trace::current();
        Self {
            guard: ManuallyDrop::new(guard),
            wakers,
            trace,
            trace_t0: if trace != 0 { trace::now_ns() } else { 0 },
        }
    }
}

impl<K, V, L: RawLock> Deref for ShardReadGuard<'_, K, V, L> {
    type Target = HashMap<K, V>;
    #[inline]
    fn deref(&self) -> &HashMap<K, V> {
        &self.guard
    }
}

impl<K, V, L: RawLock> Drop for ShardReadGuard<'_, K, V, L> {
    #[inline]
    fn drop(&mut self) {
        // Safety: dropped exactly once, here. Release, then notify.
        unsafe { ManuallyDrop::drop(&mut self.guard) };
        self.wakers.notify_all();
        if self.trace != 0 {
            trace::span_at(
                self.trace,
                "shard.lock_hold",
                self.trace_t0,
                trace::now_ns(),
                trace::SpanKind::Async,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Table<K, V> = ShardedTable<K, V, Hemlock>;

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        for (ask, got) in [(1, 1), (2, 2), (3, 4), (5, 8), (64, 64), (100, 128)] {
            let t: Table<u32, u32> = ShardedTable::with_shards(ask);
            assert_eq!(t.shards(), got);
        }
        let t: Table<u32, u32> = ShardedTable::with_shards(0);
        assert_eq!(t.shards(), 1);
        assert!(ShardedTable::<u32, u32, Hemlock>::new().shards() >= 16);
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let t: Table<&'static str, i32> = ShardedTable::with_shards(8);
        assert_eq!(t.insert("a", 1), None);
        assert_eq!(t.insert("a", 2), Some(1));
        assert_eq!(t.get(&"a"), Some(2));
        assert!(t.contains_key(&"a"));
        assert_eq!(t.remove(&"a"), Some(2));
        assert_eq!(t.get(&"a"), None);
        assert!(t.is_empty());
    }

    #[test]
    fn update_covers_insert_mutate_delete() {
        let t: Table<u32, u32> = ShardedTable::with_shards(4);
        // Absent -> filled.
        t.update(7, |slot| {
            assert_eq!(*slot, None);
            *slot = Some(1);
        });
        // Present -> mutated, returning a value.
        let doubled = t.update(7, |slot| {
            let v = slot.unwrap() * 2;
            *slot = Some(v);
            v
        });
        assert_eq!(doubled, 2);
        // Present -> emptied.
        t.update(7, |slot| *slot = None);
        assert_eq!(t.get(&7), None);
    }

    #[test]
    fn with_observes_without_mutating() {
        let t: Table<u32, String> = ShardedTable::with_shards(2);
        t.insert(1, "one".into());
        assert_eq!(t.with(&1, |s| s.map(String::len)), Some(3));
        assert!(!t.with(&2, |s| s.is_some()));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn guard_allows_multi_op_critical_sections() {
        let t: Table<u32, u32> = ShardedTable::with_shards(1);
        {
            let mut g = t.guard(&1);
            g.entry(1).or_insert(10); // full HashMap API through the guard
            g.insert(2, 20); // single shard: same guard covers both keys
        }
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn shard_index_is_stable_and_in_range() {
        let t: Table<u64, ()> = ShardedTable::with_shards(32);
        for k in 0..1000u64 {
            let i = t.shard_index(&k);
            assert!(i < t.shards());
            assert_eq!(i, t.shard_index(&k), "same key, same shard");
        }
    }

    #[test]
    fn distribution_spreads_across_shards() {
        let t: Table<u64, ()> = ShardedTable::with_shards(16);
        let mut counts = vec![0usize; t.shards()];
        for k in 0..16_000u64 {
            counts[t.shard_index(&k)] += 1;
        }
        // Uniform share is 1000; SipHash should keep every shard within a
        // generous ±50% band (binomial σ ≈ 31, so ±500 is > 16σ).
        for (i, &c) in counts.iter().enumerate() {
            assert!((500..=1500).contains(&c), "shard {i} got {c} of 16000");
        }
    }

    #[test]
    fn stats_census_counts_acquisitions() {
        let t: Table<u32, u32> = ShardedTable::with_shards(4);
        for k in 0..100 {
            t.insert(k, k);
        }
        let stats = t.stats();
        assert_eq!(stats.acquisitions(), 100);
        assert_eq!(stats.contended(), 0, "single thread never contends");
        assert_eq!(stats.shards.len(), 4);
        t.reset_stats();
        assert_eq!(t.stats().acquisitions(), 0);
    }

    #[test]
    fn try_guard_reports_busy_shards() {
        let t: Table<u32, u32> = ShardedTable::with_shards(1);
        let g = t.guard(&1);
        assert!(t.try_guard(&1).is_none());
        drop(g);
        assert!(t.try_guard(&1).is_some());
        let stats = t.stats();
        assert_eq!(stats.acquisitions(), 3);
        assert_eq!(stats.contended(), 1);
    }

    #[test]
    fn try_with_and_timed_guards_respect_a_busy_shard() {
        use std::time::Duration;
        let t: Table<u32, u32> = ShardedTable::with_shards(1);
        t.insert(1, 10);
        // Free: all bounded paths succeed.
        assert_eq!(t.try_with(&1, |v| v.copied()), Some(Some(10)));
        assert!(t.try_guard_for(&1, Duration::from_millis(5)).is_some());
        assert!(t.try_read_guard_for(&1, Duration::from_millis(5)).is_some());
        // Busy: they refuse or time out instead of stalling.
        let g = t.guard(&1);
        assert_eq!(t.try_with(&1, |_| ()), None);
        let t0 = std::time::Instant::now();
        assert!(t.try_guard_for(&1, Duration::from_millis(10)).is_none());
        assert!(t0.elapsed() >= Duration::from_millis(10));
        assert!(t
            .try_read_guard_for(&1, Duration::from_millis(10))
            .is_none());
        drop(g);
        // The aborted attempts left the shard fully usable.
        assert_eq!(t.get(&1), Some(10));
    }

    #[test]
    fn with_two_moves_value_across_shards_atomically() {
        let t: Table<u32, u32> = ShardedTable::with_shards(8);
        t.insert(3, 30);
        // Transfer: drain one slot into the other, across shard locks.
        let moved = t.with_two(3, 4, |a, b| {
            let v = a.take().expect("source present");
            *b = Some(b.take().unwrap_or(0) + v);
            v
        });
        assert_eq!(moved, 30);
        assert_eq!(t.get(&3), None);
        assert_eq!(t.get(&4), Some(30));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn with_two_same_shard_and_panic_preserve_slots() {
        let t: Table<u32, u32> = ShardedTable::with_shards(1); // force same shard
        t.insert(1, 10);
        t.insert(2, 20);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.with_two(1, 2, |a, _b| {
                *a = Some(11); // applied before the panic
                panic!("mid-transaction");
            })
        }));
        assert!(r.is_err());
        // Slot contents at panic time survived; nothing vanished.
        assert_eq!(t.get(&1), Some(11));
        assert_eq!(t.get(&2), Some(20));
    }

    #[test]
    fn crossing_with_two_pairs_never_deadlock() {
        use std::sync::Arc;
        // Two shards, two threads, opposite key orders: the ordered
        // try+backoff protocol must make progress on every schedule.
        let t: Arc<Table<u32, u64>> = Arc::new(ShardedTable::with_shards(2));
        // Find two keys on distinct shards.
        let (ka, kb) = {
            let mut ka = 0;
            let mut kb = 1;
            'outer: for a in 0..64u32 {
                for b in 0..64u32 {
                    if a != b && t.shard_index(&a) != t.shard_index(&b) {
                        ka = a;
                        kb = b;
                        break 'outer;
                    }
                }
            }
            (ka, kb)
        };
        t.insert(ka, 0);
        t.insert(kb, 0);
        std::thread::scope(|s| {
            for flip in [false, true] {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    let (x, y) = if flip { (kb, ka) } else { (ka, kb) };
                    for _ in 0..2_000 {
                        t.with_two(x, y, |a, b| {
                            *a = Some(a.unwrap_or(0) + 1);
                            *b = Some(b.unwrap_or(0) + 1);
                        });
                    }
                });
            }
        });
        // Both transactions fully applied: each key saw every increment.
        assert_eq!(t.get(&ka), Some(4_000));
        assert_eq!(t.get(&kb), Some(4_000));
    }

    #[test]
    fn footprint_prices_shards_threads_and_the_combining_layer() {
        let t: Table<u32, u32> = ShardedTable::with_shards(64);
        assert_eq!(t.lock_meta().name, "Hemlock");
        // Shard locks + thread state, plus the combining layer: one
        // Hemlock word per publication-list lock and the list header.
        let combining = Hemlock::META.footprint_bytes(64, 0) + 64 * core::mem::size_of::<Vec<()>>();
        assert_eq!(
            t.footprint_bytes(8),
            Hemlock::META.footprint_bytes(64, 8) + combining
        );
        // One-word locks: 64 shards cost 64 words of lock space.
        assert_eq!(
            Hemlock::META.footprint_bytes(64, 0),
            64 * core::mem::size_of::<usize>()
        );
    }

    #[test]
    fn concurrent_mixed_workload_is_consistent() {
        let t: Table<u64, u64> = ShardedTable::with_shards(8);
        let threads = 4u64;
        let per = 2_000u64;
        std::thread::scope(|s| {
            for tid in 0..threads {
                let t = &t;
                s.spawn(move || {
                    // Disjoint key ranges: every write must survive.
                    for i in 0..per {
                        let k = tid * per + i;
                        t.insert(k, k);
                        assert_eq!(t.get(&k), Some(k));
                        if i % 3 == 0 {
                            t.remove(&k);
                        }
                    }
                });
            }
        });
        let expect: usize = (0..threads * per).filter(|i| i % per % 3 != 0).count();
        assert_eq!(t.len(), expect);
        assert!(t.stats().acquisitions() >= threads * per * 2);
    }

    #[test]
    fn update_preserves_the_entry_when_the_closure_panics() {
        let t: Table<u32, u32> = ShardedTable::with_shards(2);
        t.insert(1, 10);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.update(1, |slot| {
                *slot = Some(11); // applied before the panic
                panic!("mid-update");
            })
        }));
        assert!(r.is_err());
        // The slot's content at panic time survived; nothing vanished.
        assert_eq!(t.get(&1), Some(11));
        // A panicking closure on a vacant slot leaves the key absent.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.update(2, |_| panic!("vacant"))
        }));
        assert!(r.is_err());
        assert_eq!(t.get(&2), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn rw_lock_admits_concurrent_readers_of_one_shard() {
        use hemlock_rw::HemlockRw;
        // One shard: every key contends on the same lock, so a concurrent
        // reader completing while we hold a read guard proves sharing.
        let t: ShardedTable<u32, u32, HemlockRw> = ShardedTable::with_shards(1);
        t.insert(1, 10);
        let g = t.read_guard(&1);
        assert_eq!(g.get(&1), Some(&10));
        std::thread::scope(|s| {
            s.spawn(|| {
                // Must not block behind the main thread's read hold.
                assert_eq!(t.get(&1), Some(10));
                assert!(t.contains_key(&1));
                assert_eq!(t.with(&1, |v| v.copied()), Some(10));
            });
        });
        drop(g);
        // Writers still exclude: the census keeps counting both modes.
        t.insert(1, 11);
        assert_eq!(t.get(&1), Some(11));
        assert!(t.stats().acquisitions() >= 6);
    }

    #[test]
    fn async_ops_roundtrip_uncontended() {
        use hemlock_harness::executor::block_on;
        let t: Table<u32, u32> = ShardedTable::with_shards(4);
        block_on(async {
            t.update_async(1, |slot| *slot = Some(10)).await;
            assert_eq!(t.get_async(&1).await, Some(10));
            assert_eq!(t.with_async(&1, |v| v.copied()).await, Some(10));
            let moved = t
                .with_two_async(1, 2, |a, b| {
                    let v = a.take().expect("present");
                    *b = Some(v + 1);
                    v
                })
                .await;
            assert_eq!(moved, 10);
            assert_eq!(t.get_async(&1).await, None);
            assert_eq!(t.get_async(&2).await, Some(11));
        });
    }

    #[test]
    fn async_tasks_and_sync_threads_share_the_table() {
        use hemlock_harness::executor::TaskPool;
        use std::sync::Arc;
        // One shard: every operation contends on a single lock, so async
        // waiters park behind sync holders and vice versa — completion
        // proves the release-notification protocol loses no wakeups.
        let t: Arc<Table<u32, u64>> = Arc::new(ShardedTable::with_shards(1));
        t.insert(0, 0);
        let pool = TaskPool::new(2);
        let per = 500u64;
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let t = Arc::clone(&t);
                pool.spawn(async move {
                    for _ in 0..per {
                        t.update_async(0, |slot| *slot = Some(slot.unwrap_or(0) + 1))
                            .await;
                    }
                })
            })
            .collect();
        std::thread::scope(|s| {
            for _ in 0..2 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for _ in 0..per {
                        t.update(0, |slot| *slot = Some(slot.unwrap_or(0) + 1));
                    }
                });
            }
        });
        for h in handles {
            h.join();
        }
        assert_eq!(t.get(&0), Some(5 * per));
    }

    #[test]
    fn crossing_with_two_async_pairs_never_deadlock() {
        use hemlock_harness::executor::TaskPool;
        use std::sync::Arc;
        let t: Arc<Table<u32, u64>> = Arc::new(ShardedTable::with_shards(2));
        let (ka, kb) = {
            let (mut ka, mut kb) = (0, 1);
            'outer: for a in 0..64u32 {
                for b in 0..64u32 {
                    if a != b && t.shard_index(&a) != t.shard_index(&b) {
                        ka = a;
                        kb = b;
                        break 'outer;
                    }
                }
            }
            (ka, kb)
        };
        let pool = TaskPool::new(2);
        let handles: Vec<_> = [false, true]
            .into_iter()
            .map(|flip| {
                let t = Arc::clone(&t);
                pool.spawn(async move {
                    let (x, y) = if flip { (kb, ka) } else { (ka, kb) };
                    for _ in 0..1_000 {
                        t.with_two_async(x, y, |a, b| {
                            *a = Some(a.unwrap_or(0) + 1);
                            *b = Some(b.unwrap_or(0) + 1);
                        })
                        .await;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(t.get(&ka), Some(2_000));
        assert_eq!(t.get(&kb), Some(2_000));
    }

    #[test]
    fn dropped_async_guard_future_leaves_the_shard_usable() {
        use std::future::Future;
        use std::sync::Arc;
        use std::task::{Context, Wake, Waker};
        struct Noop;
        impl Wake for Noop {
            fn wake(self: Arc<Self>) {}
        }
        let t: Table<u32, u32> = ShardedTable::with_shards(1);
        let held = t.guard(&1);
        {
            let fut = t.guard_async(&1);
            let mut fut = Box::pin(fut);
            let waker = Waker::from(Arc::new(Noop));
            assert!(fut
                .as_mut()
                .poll(&mut Context::from_waker(&waker))
                .is_pending());
            // Dropping the pending future (cancellation) must not wedge
            // the shard: the registered waker is stale, nothing more.
        }
        drop(held);
        t.insert(1, 1);
        assert_eq!(t.get(&1), Some(1));
    }

    #[test]
    fn guard_drop_on_panic_releases_the_shard() {
        let t: Table<u32, u32> = ShardedTable::with_shards(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut g = t.guard(&1);
            g.insert(1, 1);
            panic!("inside shard critical section");
        }));
        assert!(r.is_err());
        // The shard is usable again and the write persisted.
        assert_eq!(t.get(&1), Some(1));
        t.insert(1, 2);
        assert_eq!(t.get(&1), Some(2));
    }
}
