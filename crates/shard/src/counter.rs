//! [`ShardedCounter`]: a striped counter built from many small locks.
//!
//! The smallest demonstration of the trade this crate makes everywhere:
//! instead of one contended cell, spend a few *cheap* lock instances
//! (stripes) and let each thread pound on its own. `add` touches one
//! stripe chosen by a per-thread token; `sum` folds all stripes. With a
//! one-word lock algorithm the whole counter — 64 stripes — costs less
//! than a single padded MCS queue element.

use hemlock_core::hemlock::Hemlock;
use hemlock_core::meta::LockMeta;
use hemlock_core::pad::CachePadded;
use hemlock_core::raw::RawLock;
use hemlock_core::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Monotone per-thread token used to spread threads over stripes without
/// hashing; cached in a thread-local after first use.
fn thread_token() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static TOKEN: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TOKEN.with(|t| *t)
}

/// A counter striped over independently locked cells.
///
/// ```
/// use hemlock_shard::ShardedCounter;
/// use hemlock_core::hemlock::Hemlock;
///
/// let c: ShardedCounter<Hemlock> = ShardedCounter::with_stripes(8);
/// std::thread::scope(|s| {
///     for _ in 0..4 {
///         s.spawn(|| {
///             for _ in 0..1_000 {
///                 c.incr();
///             }
///         });
///     }
/// });
/// assert_eq!(c.sum(), 4_000);
/// ```
pub struct ShardedCounter<L: RawLock = Hemlock> {
    stripes: Box<[CachePadded<Mutex<i64, L>>]>,
    mask: usize,
}

impl<L: RawLock> Default for ShardedCounter<L> {
    fn default() -> Self {
        Self::new()
    }
}

impl<L: RawLock> ShardedCounter<L> {
    /// Creates a counter with one stripe per hardware thread (next power of
    /// two, at least 8).
    pub fn new() -> Self {
        let hw = std::thread::available_parallelism().map_or(4, |n| n.get());
        Self::with_stripes(hw.max(8))
    }

    /// Creates a counter with `stripes` cells, rounded up to a power of two
    /// (at least 1).
    pub fn with_stripes(stripes: usize) -> Self {
        let n = stripes.max(1).next_power_of_two();
        Self {
            stripes: (0..n).map(|_| CachePadded::new(Mutex::new(0))).collect(),
            mask: n - 1,
        }
    }

    /// Number of stripes (always a power of two).
    pub fn stripes(&self) -> usize {
        self.stripes.len()
    }

    /// Adds `delta` to the calling thread's stripe.
    pub fn add(&self, delta: i64) {
        *self.stripes[thread_token() & self.mask].lock() += delta;
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Folds all stripes. Exact when no `add` runs concurrently; otherwise
    /// a linearizable-per-stripe snapshot (the usual striped-counter
    /// contract).
    pub fn sum(&self) -> i64 {
        self.stripes.iter().map(|s| *s.lock()).sum()
    }

    /// Resets every stripe to zero.
    pub fn reset(&self) {
        for s in self.stripes.iter() {
            *s.lock() = 0;
        }
    }

    /// The stripe-lock algorithm's descriptor.
    pub fn lock_meta(&self) -> LockMeta {
        L::META
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_of_concurrent_adds_is_exact() {
        let c: ShardedCounter<Hemlock> = ShardedCounter::with_stripes(4);
        std::thread::scope(|s| {
            for t in 0..8 {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..5_000 {
                        c.add(if t % 2 == 0 { 2 } else { -1 });
                    }
                });
            }
        });
        // 4 threads adding +2, 4 adding -1, 5000 times each.
        assert_eq!(c.sum(), 4 * 5_000 * 2 - 4 * 5_000);
        c.reset();
        assert_eq!(c.sum(), 0);
    }

    #[test]
    fn stripe_count_rounds_up() {
        let c: ShardedCounter<Hemlock> = ShardedCounter::with_stripes(3);
        assert_eq!(c.stripes(), 4);
        assert!(ShardedCounter::<Hemlock>::new().stripes() >= 8);
        assert_eq!(c.lock_meta().name, "Hemlock");
    }

    #[test]
    fn single_thread_add_lands_in_one_stripe() {
        let c: ShardedCounter<Hemlock> = ShardedCounter::with_stripes(8);
        for _ in 0..10 {
            c.incr();
        }
        assert_eq!(c.sum(), 10);
    }
}
