//! Classic MCS lock (Mellor-Crummey & Scott, 1991).
//!
//! Arriving threads append an explicit queue element to the tail and spin on
//! a `locked` flag in their *own* element; the releasing owner follows its
//! element's `next` link and clears the successor's flag.
//!
//! Fidelity notes matching the paper's evaluation setup (§5):
//!
//! - The lock body stores the **head** (owner's element) next to the tail,
//!   "allowing that value to be passed from the lock operation to the
//!   corresponding unlock operation" behind a context-free interface — so
//!   the body is 2 words (Table 1).
//! - Queue elements are padded to a cache line "to reduce false sharing and
//!   to provide a fair comparison" (§2.3).
//! - Elements come from a **thread-local stack of free queue elements**
//!   (footnote 5): allocate from the free list in `lock`, fall back to heap
//!   allocation as necessary, return elements in `unlock`, and reclaim the
//!   whole stack when the thread exits.

use core::cell::RefCell;
use core::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use hemlock_core::meta::LockMeta;
use hemlock_core::raw::{RawLock, RawTryLock};
use hemlock_core::spin::SpinWait;

/// An MCS queue element, padded to a cache line (§2.3). This is `E` in the
/// paper's Table 1 space accounting.
#[repr(align(128))]
pub(crate) struct McsNode {
    next: AtomicUsize,
    locked: AtomicBool,
}

impl McsNode {
    fn new() -> Self {
        Self {
            next: AtomicUsize::new(0),
            locked: AtomicBool::new(false),
        }
    }
}

std::thread_local! {
    /// Footnote 5: per-thread stack of free queue elements. "A stack is
    /// convenient for locality." The stack is trimmed only at thread exit.
    // Boxed on purpose: node addresses are published through lock words,
    // so nodes must not move when the free stack grows.
    #[allow(clippy::vec_box)]
    static FREE_NODES: RefCell<Vec<Box<McsNode>>> = const { RefCell::new(Vec::new()) };
}

/// Pops a recycled element or heap-allocates one, initialized for enqueue.
fn alloc_node() -> usize {
    let node = FREE_NODES
        .with(|f| f.borrow_mut().pop())
        .unwrap_or_else(|| Box::new(McsNode::new()));
    node.next.store(0, Ordering::Relaxed);
    node.locked.store(true, Ordering::Relaxed);
    Box::into_raw(node) as usize
}

/// Returns a quiescent element to the thread-local free stack.
///
/// # Safety
///
/// `addr` must come from [`alloc_node`] on this thread's lock path, and no
/// other thread may reference the element anymore.
unsafe fn free_node(addr: usize) {
    let node = Box::from_raw(addr as *mut McsNode);
    FREE_NODES.with(|f| f.borrow_mut().push(node));
}

/// Classic MCS lock: 2-word body, explicit padded queue elements, local
/// spinning, FIFO admission.
pub struct McsLock {
    /// Most recently arrived element; null when free.
    tail: AtomicUsize,
    /// The owner's element, written under the lock itself so that `unlock`
    /// can find it without any context from `lock`.
    head: AtomicUsize,
}

impl McsLock {
    /// Creates an unlocked lock.
    pub const fn new() -> Self {
        Self {
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
        }
    }

    /// Size of one queue element in bytes (padded, per §2.3).
    pub const ELEMENT_BYTES: usize = core::mem::size_of::<McsNode>();

    /// Raw view of the tail word (tests).
    #[doc(hidden)]
    pub fn tail_word(&self) -> usize {
        self.tail.load(Ordering::Relaxed)
    }

    fn finish_acquire(&self, node: usize) {
        // Protected by the lock we now hold; Relaxed suffices because only
        // this thread reads it back (in its own unlock).
        self.head.store(node, Ordering::Relaxed);
    }
}

impl Default for McsLock {
    fn default() -> Self {
        Self::new()
    }
}

unsafe impl RawLock for McsLock {
    const META: LockMeta = {
        let mut m = LockMeta::base("MCS", "§2, Table 1");
        m.lock_words = 2; // tail + head (owner's element, for context-freedom)
        m.held_elements = 1;
        m.wait_elements = 1;
        m.fifo = true;
        m.try_lock = true;
        // The trylock CAS never publishes a queue element on failure, so
        // the provided deadline-bounded retry path aborts cleanly.
        m.abortable = true;
        m.asyncable = true; // free withdrawal => safe as the async queue guard
        m
    };

    fn is_locked_hint(&self) -> Option<bool> {
        // Tail is null exactly when the lock is unheld with no queue.
        Some(self.tail_word() != 0)
    }

    fn lock(&self) {
        let node = alloc_node();
        // Safety: `node` is live until this thread's unlock reclaims it.
        let node_ref = unsafe { &*(node as *const McsNode) };
        let pred = self.tail.swap(node, Ordering::AcqRel);
        if pred != 0 {
            // Safety: the predecessor's element stays live until it observes
            // our link (its unlock waits for `next`).
            let pred_ref = unsafe { &*(pred as *const McsNode) };
            pred_ref.next.store(node, Ordering::Release);
            let mut spin = SpinWait::new();
            while node_ref.locked.load(Ordering::Acquire) {
                spin.wait();
            }
        }
        self.finish_acquire(node);
    }

    unsafe fn unlock(&self) {
        let node = self.head.load(Ordering::Relaxed);
        debug_assert_ne!(node, 0, "unlock without a held lock");
        let node_ref = &*(node as *const McsNode);
        if self
            .tail
            .compare_exchange(node, 0, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            // A successor swapped in behind us but may not have linked yet:
            // wait for the back-link (like Hemlock, MCS's contended unlock
            // is not wait-free — §2).
            let mut spin = SpinWait::new();
            let mut succ = node_ref.next.load(Ordering::Acquire);
            while succ == 0 {
                spin.wait();
                succ = node_ref.next.load(Ordering::Acquire);
            }
            let succ_ref = &*(succ as *const McsNode);
            succ_ref.locked.store(false, Ordering::Release);
        }
        // Our element is now unreachable from the queue: recycle it.
        free_node(node);
    }
}

unsafe impl RawTryLock for McsLock {
    fn try_lock(&self) -> bool {
        let node = alloc_node();
        if self
            .tail
            .compare_exchange(0, node, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            self.finish_acquire(node);
            true
        } else {
            // Never published: safe to reclaim immediately.
            unsafe { free_node(node) };
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    crate::baseline_tests!(super::McsLock);

    #[test]
    fn lock_body_is_two_words() {
        assert_eq!(
            core::mem::size_of::<McsLock>(),
            2 * core::mem::size_of::<usize>()
        );
    }

    #[test]
    fn element_is_cache_line_padded() {
        assert_eq!(McsLock::ELEMENT_BYTES, 128);
    }

    #[test]
    fn free_list_recycles_nodes() {
        let l = McsLock::new();
        // Warm up: one allocation.
        l.lock();
        unsafe { l.unlock() };
        let before = FREE_NODES.with(|f| f.borrow().len());
        assert!(before >= 1);
        // Subsequent acquisitions must reuse, not grow, the stack.
        for _ in 0..10 {
            l.lock();
            unsafe { l.unlock() };
        }
        let after = FREE_NODES.with(|f| f.borrow().len());
        assert_eq!(before, after);
    }

    #[test]
    fn free_list_grows_with_simultaneously_held_locks() {
        // Footnote 5: "the free stack will contain N elements where N is the
        // maximum number of locks concurrently held".
        let locks: Vec<McsLock> = (0..5).map(|_| McsLock::new()).collect();
        for l in &locks {
            l.lock();
        }
        for l in locks.iter().rev() {
            unsafe { l.unlock() };
        }
        assert!(FREE_NODES.with(|f| f.borrow().len()) >= 5);
    }

    #[test]
    fn try_lock_failure_does_not_leak() {
        let l = McsLock::new();
        // Warm the free stack with two nodes so both the hold below and the
        // failed try_lock draw from it.
        let l2 = McsLock::new();
        l.lock();
        l2.lock();
        unsafe { l2.unlock() };
        unsafe { l.unlock() };
        l.lock();
        let before = FREE_NODES.with(|f| f.borrow().len());
        assert!(!l.try_lock());
        let after = FREE_NODES.with(|f| f.borrow().len());
        assert_eq!(before, after, "failed try_lock must recycle its node");
        unsafe { l.unlock() };
    }

    #[test]
    fn fifo_admission_order() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let l = Arc::new(McsLock::new());
        let order = Arc::new(AtomicUsize::new(0));
        let finish: Arc<Vec<AtomicUsize>> =
            Arc::new((0..4).map(|_| AtomicUsize::new(usize::MAX)).collect());

        l.lock();
        let mut handles = Vec::new();
        for i in 0..4 {
            let prev_tail = l.tail_word();
            let l2 = Arc::clone(&l);
            let order2 = Arc::clone(&order);
            let finish2 = Arc::clone(&finish);
            handles.push(std::thread::spawn(move || {
                l2.lock();
                finish2[i].store(order2.fetch_add(1, Ordering::AcqRel), Ordering::Release);
                unsafe { l2.unlock() };
            }));
            while l.tail_word() == prev_tail {
                std::hint::spin_loop();
            }
        }
        unsafe { l.unlock() };
        for h in handles {
            h.join().unwrap();
        }
        for i in 0..4 {
            assert_eq!(finish[i].load(Ordering::Acquire), i);
        }
    }
}
