//! # hemlock-locks
//!
//! The lock algorithms the Hemlock paper evaluates against, implemented
//! from scratch with the same fidelity choices as the paper's framework:
//!
//! - [`McsLock`] — classic MCS. The lock body is 2 words (`tail` plus a
//!   `head` field that carries the owner's queue element from `lock` to
//!   `unlock`, making the classic algorithm usable behind a context-free
//!   pthread-style interface). Queue elements are cache-line padded and come
//!   from a thread-local free stack, exactly as described in the paper's
//!   footnote 5.
//! - [`ClhLock`] — CLH in Scott's "standard interface" formulation
//!   (Figure 4.14 of *Shared-Memory Synchronization*): 2-word lock body,
//!   per-lock dummy element installed at construction and recovered at
//!   destruction, elements migrating between threads and locks.
//! - [`TicketLock`] — classic two-word ticket lock (global spinning).
//! - [`TasLock`] / [`TtasLock`] — test-and-set and polite
//!   test-and-test-and-set (related work; compact but unfair).
//! - [`AndersonLock`] — Anderson's array-based queueing lock (related work;
//!   local spinning at the cost of a per-lock waiting array sized to the
//!   maximum thread count).
//!
//! All implement [`hemlock_core::RawLock`], so they slot into the same
//! `Mutex<T, L>`, benchmarks, and tests as the Hemlock family.
//!
//! This crate also hosts the [`catalog`] — the unified registry mapping
//! string keys (`"hemlock"`, `"mcs"`, `"clh"`, …) to lock factories and
//! [`hemlock_core::LockMeta`] descriptors, with both dynamic
//! ([`catalog::dyn_mutex`]) and static ([`catalog::with_lock_type`],
//! [`for_each_lock!`]) dispatch. The `hemlock-bench` binaries resolve their
//! `--lock` arguments here.

#![deny(missing_docs)]

mod anderson;
pub mod catalog;
mod clh;
mod mcs;
mod tas;
mod ticket;

pub use anderson::AndersonLock;
pub use catalog::CatalogEntry;
pub use clh::ClhLock;
pub use mcs::McsLock;
pub use tas::{TasLock, TtasLock};
pub use ticket::TicketLock;

/// Shared conformance tests for baseline locks (mutual exclusion, handover,
/// multi-lock usage). FIFO and trylock behaviour differ per algorithm and
/// are tested in each module.
#[cfg(test)]
macro_rules! baseline_tests {
    ($lock:ty) => {
        mod baseline {
            use hemlock_core::mutex::Mutex;
            use hemlock_core::raw::RawLock;
            use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
            use std::sync::Arc;

            #[test]
            fn uncontended_roundtrip() {
                let l = <$lock>::default();
                for _ in 0..100 {
                    l.lock();
                    unsafe { l.unlock() };
                }
            }

            #[test]
            fn guard_api_counter() {
                let m: Arc<Mutex<u64, $lock>> = Arc::new(Mutex::new(0));
                std::thread::scope(|s| {
                    for _ in 0..4 {
                        let m = &m;
                        s.spawn(move || {
                            for _ in 0..5_000 {
                                *m.lock() += 1;
                            }
                        });
                    }
                });
                assert_eq!(*m.lock(), 20_000);
            }

            #[test]
            fn critical_sections_never_overlap() {
                let l = Arc::new(<$lock>::default());
                let in_cs = Arc::new(AtomicBool::new(false));
                std::thread::scope(|s| {
                    for _ in 0..4 {
                        let l = Arc::clone(&l);
                        let in_cs = Arc::clone(&in_cs);
                        s.spawn(move || {
                            for _ in 0..2_000 {
                                l.lock();
                                assert!(!in_cs.swap(true, Ordering::AcqRel), "overlap!");
                                in_cs.store(false, Ordering::Release);
                                unsafe { l.unlock() };
                            }
                        });
                    }
                });
            }

            #[test]
            fn handover_blocks_then_transfers() {
                let l = Arc::new(<$lock>::default());
                let stage = Arc::new(AtomicUsize::new(0));
                l.lock();
                let t = {
                    let l = Arc::clone(&l);
                    let stage = Arc::clone(&stage);
                    std::thread::spawn(move || {
                        stage.store(1, Ordering::Release);
                        l.lock();
                        stage.store(2, Ordering::Release);
                        unsafe { l.unlock() };
                    })
                };
                while stage.load(Ordering::Acquire) < 1 {
                    std::hint::spin_loop();
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
                assert_eq!(stage.load(Ordering::Acquire), 1);
                unsafe { l.unlock() };
                t.join().unwrap();
                assert_eq!(stage.load(Ordering::Acquire), 2);
            }

            #[test]
            fn holds_multiple_locks_released_in_any_order() {
                let a = <$lock>::default();
                let b = <$lock>::default();
                let c = <$lock>::default();
                a.lock();
                b.lock();
                c.lock();
                unsafe { b.unlock() };
                unsafe { a.unlock() };
                unsafe { c.unlock() };
                a.lock();
                b.lock();
                unsafe { b.unlock() };
                unsafe { a.unlock() };
            }
        }
    };
}
#[cfg(test)]
pub(crate) use baseline_tests;

#[cfg(test)]
mod proptests {
    use super::*;
    use hemlock_core::mutex::Mutex;
    use proptest::prelude::*;

    fn run_schedule<L: hemlock_core::RawLock + 'static>(ops: &[Vec<i64>]) -> i64 {
        let m: Mutex<i64, L> = Mutex::new(0);
        std::thread::scope(|s| {
            for thread_ops in ops {
                let m = &m;
                s.spawn(move || {
                    for &d in thread_ops {
                        *m.lock() += d;
                    }
                });
            }
        });
        m.into_inner()
    }

    macro_rules! schedule_oracle {
        ($name:ident, $lock:ty) => {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(16))]
                #[test]
                fn $name(ops in proptest::collection::vec(
                    proptest::collection::vec(-100i64..100, 0..64), 1..4)) {
                    let expected: i64 = ops.iter().flatten().sum();
                    prop_assert_eq!(run_schedule::<$lock>(&ops), expected);
                }
            }
        };
    }

    schedule_oracle!(mcs_matches_sequential_sum, McsLock);
    schedule_oracle!(clh_matches_sequential_sum, ClhLock);
    schedule_oracle!(ticket_matches_sequential_sum, TicketLock);
    schedule_oracle!(tas_matches_sequential_sum, TasLock);
    schedule_oracle!(ttas_matches_sequential_sum, TtasLock);
    schedule_oracle!(anderson_matches_sequential_sum, AndersonLock);
}
