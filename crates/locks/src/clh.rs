//! CLH lock (Craig; Landin & Hagersten), standard-interface formulation.
//!
//! Arriving threads swap their element onto the tail and spin on the
//! *predecessor's* element — the formulation Hemlock is "inspired by" (§1).
//! This is Scott's standard-interface variant (Figure 4.14 of
//! *Shared-Memory Synchronization*, cited by the paper for its CLH
//! implementation): the lock body carries `tail` plus a `head` field so the
//! interface stays context-free, and after acquiring, a thread *inherits its
//! predecessor's element* as its element for a future acquisition —
//! "elements migrate between locks and threads" (§2.3).
//!
//! CLH requires the lock to be born holding a **dummy element** and that
//! element's successor chain to be **recovered when the lock is destroyed**
//! (the `Init` column of Table 1) — implemented here as `ClhLock::new`
//! allocating the dummy and `Drop` reclaiming whatever element currently
//! rides in `tail`.

use core::cell::RefCell;
use core::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use hemlock_core::meta::LockMeta;
use hemlock_core::raw::RawLock;
use hemlock_core::spin::SpinWait;

/// A CLH queue element, padded to a cache line (§2.3). `locked == true`
/// means "my owner has not yet released the lock".
#[repr(align(128))]
pub(crate) struct ClhNode {
    locked: AtomicBool,
}

impl ClhNode {
    fn new(locked: bool) -> Self {
        Self {
            locked: AtomicBool::new(locked),
        }
    }
}

std::thread_local! {
    /// Per-thread stack of free elements. Unlike MCS, an element popped here
    /// may have been allocated by any thread (elements migrate); they are
    /// plain heap boxes so cross-thread reclamation is sound.
    // Boxed on purpose: node addresses are published through lock words,
    // so nodes must not move when the free stack grows.
    #[allow(clippy::vec_box)]
    static FREE_NODES: RefCell<Vec<Box<ClhNode>>> = const { RefCell::new(Vec::new()) };
}

fn alloc_node(locked: bool) -> usize {
    let node = FREE_NODES.with(|f| f.borrow_mut().pop());
    let node = match node {
        Some(n) => {
            n.locked.store(locked, Ordering::Relaxed);
            n
        }
        None => Box::new(ClhNode::new(locked)),
    };
    Box::into_raw(node) as usize
}

/// # Safety: `addr` must be a quiescent element no other thread references.
unsafe fn free_node(addr: usize) {
    let node = Box::from_raw(addr as *mut ClhNode);
    FREE_NODES.with(|f| f.borrow_mut().push(node));
}

/// CLH lock: 2-word body plus a pre-installed dummy element; local spinning
/// on the predecessor; FIFO; wait-free unlock; **no trylock** (§2: "MCS and
/// Hemlock allow trivial implementations of the TryLock operation [...]
/// whereas Ticket Locks and CLH do not").
pub struct ClhLock {
    /// Most recently arrived element. Never null: holds the dummy when free.
    tail: AtomicUsize,
    /// The owner's element (context passed from lock to unlock under the
    /// protection of the lock itself).
    head: AtomicUsize,
}

impl ClhLock {
    /// Creates an unlocked lock, pre-initialized with its dummy element.
    pub fn new() -> Self {
        Self {
            tail: AtomicUsize::new(alloc_node(false)),
            head: AtomicUsize::new(0),
        }
    }

    /// Size of one queue element in bytes (padded, per §2.3).
    pub const ELEMENT_BYTES: usize = core::mem::size_of::<ClhNode>();

    /// Raw view of the tail word (tests).
    #[doc(hidden)]
    pub fn tail_word(&self) -> usize {
        self.tail.load(Ordering::Relaxed)
    }
}

impl Default for ClhLock {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for ClhLock {
    fn drop(&mut self) {
        // Table 1's non-trivial destructor: recover the current dummy (the
        // element left in `tail` once the lock is idle). `&mut self`
        // guarantees no thread is engaged with the queue.
        let node = *self.tail.get_mut();
        debug_assert!(
            !unsafe { &*(node as *const ClhNode) }
                .locked
                .load(Ordering::Relaxed),
            "CLH lock dropped while held"
        );
        // Safety: idle lock, sole reference.
        unsafe { drop(Box::from_raw(node as *mut ClhNode)) };
    }
}

unsafe impl RawLock for ClhLock {
    const META: LockMeta = {
        let mut m = LockMeta::base("CLH", "§4, Table 1");
        m.lock_words = 2; // tail + head-of-queue pointer
        m.wait_elements = 1;
        m.fifo = true;
        m.nontrivial_init = true; // per-lock dummy element
        m
    };

    fn lock(&self) {
        let node = alloc_node(true);
        let pred = self.tail.swap(node, Ordering::AcqRel);
        debug_assert_ne!(pred, 0, "CLH tail always holds an element");
        // Safety: the predecessor element stays live until we inherit it.
        let pred_ref = unsafe { &*(pred as *const ClhNode) };
        let mut spin = SpinWait::new();
        while pred_ref.locked.load(Ordering::Acquire) {
            spin.wait();
        }
        // Acquired. Inherit the predecessor's element for future use and
        // remember our own element so unlock can find it.
        unsafe { free_node(pred) };
        self.head.store(node, Ordering::Relaxed);
    }

    unsafe fn unlock(&self) {
        let node = self.head.load(Ordering::Relaxed);
        debug_assert_ne!(node, 0, "unlock without a held lock");
        let node_ref = &*(node as *const ClhNode);
        // Wait-free release: a single store (§2, Table: "an uncontended
        // unlock requires [...] simple stores for CLH and Ticket Locks").
        node_ref.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    crate::baseline_tests!(super::ClhLock);

    #[test]
    fn lock_body_is_two_words() {
        assert_eq!(
            core::mem::size_of::<ClhLock>(),
            2 * core::mem::size_of::<usize>()
        );
    }

    #[test]
    fn element_is_cache_line_padded() {
        assert_eq!(ClhLock::ELEMENT_BYTES, 128);
    }

    #[test]
    fn dummy_element_installed_and_recovered() {
        let l = ClhLock::new();
        assert_ne!(l.tail_word(), 0, "lock is born with a dummy element");
        drop(l); // Drop must not leak or double-free (asan/miri would catch)
    }

    #[test]
    fn elements_migrate_between_threads() {
        // After a contended handover, the waiter inherits the element the
        // previous owner enqueued: tail after release differs from the
        // original dummy.
        use std::sync::Arc;
        let l = Arc::new(ClhLock::new());
        let dummy = l.tail_word();
        l.lock();
        let t = {
            let l = Arc::clone(&l);
            std::thread::spawn(move || {
                l.lock();
                unsafe { l.unlock() };
            })
        };
        while l.tail_word() == dummy {
            std::hint::spin_loop();
        }
        unsafe { l.unlock() };
        t.join().unwrap();
        assert_ne!(l.tail_word(), dummy, "dummy was inherited by an acquirer");
    }

    #[test]
    fn fifo_admission_order() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let l = Arc::new(ClhLock::new());
        let order = Arc::new(AtomicUsize::new(0));
        let finish: Arc<Vec<AtomicUsize>> =
            Arc::new((0..4).map(|_| AtomicUsize::new(usize::MAX)).collect());

        l.lock();
        let mut handles = Vec::new();
        for i in 0..4 {
            let prev_tail = l.tail_word();
            let l2 = Arc::clone(&l);
            let order2 = Arc::clone(&order);
            let finish2 = Arc::clone(&finish);
            handles.push(std::thread::spawn(move || {
                l2.lock();
                finish2[i].store(order2.fetch_add(1, Ordering::AcqRel), Ordering::Release);
                unsafe { l2.unlock() };
            }));
            while l.tail_word() == prev_tail {
                std::hint::spin_loop();
            }
        }
        unsafe { l.unlock() };
        for h in handles {
            h.join().unwrap();
        }
        for i in 0..4 {
            assert_eq!(finish[i].load(Ordering::Acquire), i);
        }
    }
}
