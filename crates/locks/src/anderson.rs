//! Anderson's array-based queueing lock (related work, §4).
//!
//! "Anderson's array-based queueing lock is based on Ticket Locks but
//! provides local spinning. It employs a waiting array for each lock
//! instance, sized to ensure there is at least one array element for each
//! potentially waiting thread, yielding a potentially large footprint. The
//! maximum number of participating threads must be known in advance when
//! initializing the lock." — the space/locality trade-off Table 1 positions
//! Hemlock against.

use core::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use hemlock_core::meta::LockMeta;
use hemlock_core::pad::CachePadded;
use hemlock_core::raw::RawLock;
use hemlock_core::spin::SpinWait;

/// Default waiting-array capacity (maximum simultaneous threads per lock).
pub const DEFAULT_SLOTS: usize = 64;

/// Anderson array lock: FIFO, local spinning, one padded flag per potential
/// waiter. `SLOTS` bounds the number of threads that may contend at once.
pub struct AndersonLock<const SLOTS: usize = DEFAULT_SLOTS> {
    /// `flags[i]` is true when the thread holding ticket `i % SLOTS` may
    /// enter.
    flags: [CachePadded<AtomicBool>; SLOTS],
    /// Ticket dispenser.
    tail: AtomicUsize,
    /// The owner's slot index, carried from lock to unlock under the lock
    /// itself (context-free interface, same trick as our MCS head field).
    head: AtomicUsize,
}

impl<const SLOTS: usize> AndersonLock<SLOTS> {
    /// Creates an unlocked lock. Slot 0 starts enabled.
    pub fn new() -> Self {
        let flags = core::array::from_fn(|i| CachePadded::new(AtomicBool::new(i == 0)));
        Self {
            flags,
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
        }
    }

    /// Bytes occupied by the waiting array (Table 1's "potentially large
    /// footprint").
    pub const ARRAY_BYTES: usize = SLOTS * core::mem::size_of::<CachePadded<AtomicBool>>();
}

impl<const SLOTS: usize> Default for AndersonLock<SLOTS> {
    fn default() -> Self {
        Self::new()
    }
}

unsafe impl<const SLOTS: usize> RawLock for AndersonLock<SLOTS> {
    const META: LockMeta = {
        let mut m = LockMeta::base("Anderson", "§4 related work");
        // Padded waiting array plus head + tail; the struct's cache-line
        // alignment rounds the two scalar words up to one more full line.
        m.lock_words =
            (SLOTS + 1) * (hemlock_core::pad::CACHE_LINE / core::mem::size_of::<usize>());
        m.fifo = true;
        m
    };

    fn lock(&self) {
        let slot = self.tail.fetch_add(1, Ordering::Relaxed) % SLOTS;
        let mut spin = SpinWait::new();
        while !self.flags[slot].load(Ordering::Acquire) {
            spin.wait();
        }
        // Consume the permission so the slot can be reused a lap later.
        self.flags[slot].store(false, Ordering::Relaxed);
        self.head.store(slot, Ordering::Relaxed);
    }

    unsafe fn unlock(&self) {
        let slot = self.head.load(Ordering::Relaxed);
        self.flags[(slot + 1) % SLOTS].store(true, Ordering::Release);
    }

    fn is_locked_hint(&self) -> Option<bool> {
        // The grant slot the *next* arrival would take: its flag is true
        // exactly when the lock is free with an empty queue (the previous
        // owner enabled it and nobody has consumed it). A holder clears its
        // own flag on entry, and with waiters queued the dispenser has
        // advanced to a slot whose flag is still false — so a false flag at
        // `tail % SLOTS` means "engaged". Racy by nature (the ticket may
        // advance between the two loads); statistics only, per the trait.
        let next = self.tail.load(Ordering::Relaxed) % SLOTS;
        Some(!self.flags[next].load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    crate::baseline_tests!(super::AndersonLock<64>);

    #[test]
    fn array_footprint_is_large() {
        // The point Table 1 makes: the waiting array dwarfs a Hemlock lock.
        assert_eq!(AndersonLock::<64>::ARRAY_BYTES, 64 * 128);
        assert!(core::mem::size_of::<AndersonLock<64>>() >= 64 * 128);
    }

    #[test]
    fn wraps_around_the_array() {
        let l: AndersonLock<4> = AndersonLock::new();
        // More acquisitions than slots: indices wrap and flags recycle.
        for _ in 0..13 {
            l.lock();
            unsafe { l.unlock() };
        }
    }

    #[test]
    fn locked_hint_tracks_the_grant_slot() {
        let l: AndersonLock<4> = AndersonLock::new();
        // Across wraps: free → held → free must stay visible in the hint.
        for _ in 0..13 {
            assert_eq!(l.is_locked_hint(), Some(false));
            l.lock();
            assert_eq!(l.is_locked_hint(), Some(true));
            unsafe { l.unlock() };
        }
        assert_eq!(l.is_locked_hint(), Some(false));
    }

    #[test]
    fn locked_hint_sees_queued_waiters() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let l: Arc<AndersonLock<8>> = Arc::new(AndersonLock::new());
        let release = Arc::new(AtomicBool::new(false));
        l.lock();
        let waiter = {
            let l = Arc::clone(&l);
            let release = Arc::clone(&release);
            std::thread::spawn(move || {
                l.lock();
                while !release.load(std::sync::atomic::Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                unsafe { l.unlock() };
            })
        };
        // Holder plus a (soon-)queued waiter: the hint must say engaged
        // throughout, including right after ownership transfers.
        assert_eq!(l.is_locked_hint(), Some(true));
        unsafe { l.unlock() };
        assert_eq!(l.is_locked_hint(), Some(true), "waiter now holds it");
        release.store(true, std::sync::atomic::Ordering::Release);
        waiter.join().unwrap();
        assert_eq!(l.is_locked_hint(), Some(false));
    }

    #[test]
    fn small_array_contended() {
        use std::sync::Arc;
        let l: Arc<AndersonLock<8>> = Arc::new(AndersonLock::new());
        let c = Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = Arc::clone(&l);
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..2_000 {
                        l.lock();
                        c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        unsafe { l.unlock() };
                    }
                });
            }
        });
        assert_eq!(c.load(std::sync::atomic::Ordering::Relaxed), 8_000);
    }
}
