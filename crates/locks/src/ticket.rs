//! Classic Ticket Lock.
//!
//! Two words, no per-thread data: arrivals take a ticket with `fetch_add`
//! and spin until the `serving` counter reaches it. "They perform well in
//! the absence of contention, exhibiting low latency because of short code
//! paths. Under contention, however, performance suffers because all threads
//! contending for a given lock will busy-wait on a central location,
//! increasing coherence costs" (§1) — the global-spinning behaviour our
//! Figure 2/3 reproductions and the coherence simulator both expose.

use core::sync::atomic::{AtomicU64, Ordering};
use hemlock_core::meta::LockMeta;
use hemlock_core::raw::{RawLock, RawTryLock};
use hemlock_core::spin::SpinWait;

/// Classic two-word ticket lock: FIFO, global spinning.
///
/// The paper notes (§2) that ticket locks admit no *trivial* trylock —
/// taking a ticket with `fetch_add` is already a commitment. The
/// non-trivial form implemented here is **conditional entry**: `try_lock`
/// CASes `next` forward *only when it equals `serving`*, i.e. it takes a
/// ticket only if that ticket would be served immediately. A waiter
/// therefore never joins the line, which is also what makes the timed path
/// ([`RawTryLock::try_lock_for`], deadline-bounded retries of the CAS)
/// abortable: there is never a queue position to withdraw from.
pub struct TicketLock {
    /// Next ticket to hand out.
    next: AtomicU64,
    /// Ticket currently being served; all waiters spin here (globally).
    serving: AtomicU64,
}

impl TicketLock {
    /// Creates an unlocked lock.
    pub const fn new() -> Self {
        Self {
            next: AtomicU64::new(0),
            serving: AtomicU64::new(0),
        }
    }

    /// Number of arrivals so far (tests and instrumentation).
    #[doc(hidden)]
    pub fn arrivals(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// True when some thread holds the lock.
    pub fn is_locked(&self) -> bool {
        self.next.load(Ordering::Relaxed) != self.serving.load(Ordering::Relaxed)
    }
}

impl Default for TicketLock {
    fn default() -> Self {
        Self::new()
    }
}

unsafe impl RawLock for TicketLock {
    const META: LockMeta = {
        let mut m = LockMeta::base("Ticket", "§4, Table 1");
        m.lock_words = 2; // next-ticket + now-serving
        m.fifo = true;
        m.try_lock = true; // conditional entry (see the type docs)
        m.abortable = true; // …which never queues, so aborts are free
        m.asyncable = true; // free aborts => safe as the async queue guard
        m
    };

    fn lock(&self) {
        // Uncontended acquisition is a single fetch-and-add (§2).
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        let mut spin = SpinWait::new();
        while self.serving.load(Ordering::Acquire) != ticket {
            spin.wait();
        }
    }

    unsafe fn unlock(&self) {
        // Only the owner writes `serving`: plain add-and-store, wait-free.
        let next = self.serving.load(Ordering::Relaxed) + 1;
        self.serving.store(next, Ordering::Release);
    }

    fn is_locked_hint(&self) -> Option<bool> {
        Some(self.is_locked())
    }
}

// Safety: the CAS takes ticket `serving` only while `next == serving`, so a
// success means our ticket is the one being served — ownership exactly as
// `lock()` confers it (Acquire on success pairs with unlock's Release). A
// failure takes no ticket at all: nothing to withdraw, so the provided
// timed methods (deadline-bounded retries) satisfy the abortable contract.
unsafe impl RawTryLock for TicketLock {
    fn try_lock(&self) -> bool {
        // Acquire: the happens-before edge with the previous holder comes
        // from observing its `unlock` (a Release store to `serving`) —
        // the CAS below is on `next`, which release paths never write, so
        // this load is the only place that pairing can happen.
        let serving = self.serving.load(Ordering::Acquire);
        // `next >= serving` always; if another arrival or a release slips
        // in between the load and the CAS, `next` has moved past our stale
        // `serving` view and the CAS fails harmlessly.
        self.next
            .compare_exchange(serving, serving + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    crate::baseline_tests!(super::TicketLock);

    #[test]
    fn lock_body_is_two_words() {
        assert_eq!(core::mem::size_of::<TicketLock>(), 16);
    }

    #[test]
    fn conditional_entry_try_lock_confers_real_ownership() {
        let l = TicketLock::new();
        assert!(l.try_lock());
        assert!(l.is_locked());
        assert!(!l.try_lock(), "held: conditional entry must refuse");
        unsafe { l.unlock() };
        // The refused attempt took no ticket: FIFO accounting is intact.
        assert_eq!(l.arrivals(), 1);
        assert!(l.try_lock());
        unsafe { l.unlock() };
    }

    #[test]
    fn try_lock_refuses_while_a_queue_exists() {
        use std::sync::Arc;
        let l = Arc::new(TicketLock::new());
        l.lock();
        let waiter = {
            let l = Arc::clone(&l);
            std::thread::spawn(move || {
                l.lock(); // joins the line behind the holder
                unsafe { l.unlock() };
            })
        };
        while l.arrivals() < 2 {
            std::hint::spin_loop();
        }
        // next(2) != serving(0): conditional entry must refuse rather than
        // barge past the queued waiter.
        assert!(!l.try_lock());
        unsafe { l.unlock() };
        waiter.join().unwrap();
        assert!(l.try_lock());
        unsafe { l.unlock() };
    }

    #[test]
    fn timed_acquisition_times_out_and_leaves_fifo_state_clean() {
        use std::time::Duration;
        let l = TicketLock::new();
        l.lock();
        let t0 = std::time::Instant::now();
        assert!(!l.try_lock_for(Duration::from_millis(10)));
        assert!(t0.elapsed() >= Duration::from_millis(10));
        assert_eq!(
            l.arrivals(),
            1,
            "aborted waiter must not have taken a ticket"
        );
        unsafe { l.unlock() };
        assert!(l.try_lock_for(Duration::from_millis(5)));
        unsafe { l.unlock() };
    }

    #[test]
    fn is_locked_tracks_state() {
        let l = TicketLock::new();
        assert!(!l.is_locked());
        l.lock();
        assert!(l.is_locked());
        unsafe { l.unlock() };
        assert!(!l.is_locked());
    }

    #[test]
    fn fifo_admission_order() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let l = Arc::new(TicketLock::new());
        let order = Arc::new(AtomicUsize::new(0));
        let finish: Arc<Vec<AtomicUsize>> =
            Arc::new((0..4).map(|_| AtomicUsize::new(usize::MAX)).collect());

        l.lock();
        let mut handles = Vec::new();
        for i in 0..4 {
            let prev = l.arrivals();
            let l2 = Arc::clone(&l);
            let order2 = Arc::clone(&order);
            let finish2 = Arc::clone(&finish);
            handles.push(std::thread::spawn(move || {
                l2.lock();
                finish2[i].store(order2.fetch_add(1, Ordering::AcqRel), Ordering::Release);
                unsafe { l2.unlock() };
            }));
            // The doorstep here is the fetch_add on `next`.
            while l.arrivals() == prev {
                std::hint::spin_loop();
            }
        }
        unsafe { l.unlock() };
        for h in handles {
            h.join().unwrap();
        }
        for i in 0..4 {
            assert_eq!(finish[i].load(Ordering::Acquire), i);
        }
    }
}
