//! Test-and-set and test-and-test-and-set locks (related work, §4).
//!
//! "Simple test-and-set or polite test-and-test-and-set locks are compact
//! and exhibit excellent latency for uncontended operations, but fail to
//! scale and may allow unfairness and even indefinite starvation."
//! Included as the compact-but-unfair end of the design space; Anderson's
//! observation that TTAS beats crude TAS under multiple waiters is also the
//! counterpoint the paper draws on when motivating why CTR's
//! busy-wait-with-RMW is *not* an anti-pattern for Hemlock's 1-to-1 Grant
//! protocol (§2.1).

use core::sync::atomic::{AtomicBool, Ordering};
use hemlock_core::meta::LockMeta;
use hemlock_core::raw::{RawLock, RawTryLock};
use hemlock_core::spin::SpinWait;

/// Crude test-and-set spin lock: one byte, unfair, global RMW spinning.
pub struct TasLock {
    locked: AtomicBool,
}

impl TasLock {
    /// Creates an unlocked lock.
    pub const fn new() -> Self {
        Self {
            locked: AtomicBool::new(false),
        }
    }
}

impl Default for TasLock {
    fn default() -> Self {
        Self::new()
    }
}

unsafe impl RawLock for TasLock {
    const META: LockMeta = {
        let mut m = LockMeta::base("TAS", "§4 related work");
        m.try_lock = true;
        m.abortable = true; // a failed swap leaves nothing to withdraw
        m.asyncable = true; // …which also makes it safe as the async queue guard
        m
    };

    fn lock(&self) {
        let mut spin = SpinWait::new();
        while self.locked.swap(true, Ordering::Acquire) {
            spin.wait();
        }
    }

    unsafe fn unlock(&self) {
        self.locked.store(false, Ordering::Release);
    }

    fn is_locked_hint(&self) -> Option<bool> {
        Some(self.locked.load(Ordering::Relaxed))
    }
}

unsafe impl RawTryLock for TasLock {
    fn try_lock(&self) -> bool {
        !self.locked.swap(true, Ordering::Acquire)
    }
}

/// Polite test-and-test-and-set: read-spin until the lock looks free, then
/// attempt the atomic swap — waiters hold the line in S-state instead of
/// ping-ponging it in M-state.
pub struct TtasLock {
    locked: AtomicBool,
}

impl TtasLock {
    /// Creates an unlocked lock.
    pub const fn new() -> Self {
        Self {
            locked: AtomicBool::new(false),
        }
    }
}

impl Default for TtasLock {
    fn default() -> Self {
        Self::new()
    }
}

unsafe impl RawLock for TtasLock {
    const META: LockMeta = {
        let mut m = LockMeta::base("TTAS", "§4 related work");
        m.try_lock = true;
        m.abortable = true; // a failed swap leaves nothing to withdraw
        m.asyncable = true; // …which also makes it safe as the async queue guard
        m
    };

    fn lock(&self) {
        let mut spin = SpinWait::new();
        loop {
            if !self.locked.load(Ordering::Relaxed) && !self.locked.swap(true, Ordering::Acquire) {
                return;
            }
            spin.wait();
        }
    }

    unsafe fn unlock(&self) {
        self.locked.store(false, Ordering::Release);
    }

    fn is_locked_hint(&self) -> Option<bool> {
        Some(self.locked.load(Ordering::Relaxed))
    }
}

unsafe impl RawTryLock for TtasLock {
    fn try_lock(&self) -> bool {
        !self.locked.load(Ordering::Relaxed) && !self.locked.swap(true, Ordering::Acquire)
    }
}

#[cfg(test)]
mod tas_tests {
    #[allow(unused_imports)]
    use super::*;
    crate::baseline_tests!(super::TasLock);

    #[test]
    fn try_lock_semantics() {
        use hemlock_core::raw::{RawLock, RawTryLock};
        let l = super::TasLock::new();
        assert!(l.try_lock());
        assert!(!l.try_lock());
        unsafe { l.unlock() };
        assert!(l.try_lock());
        unsafe { l.unlock() };
    }

    #[test]
    fn single_byte_body() {
        assert_eq!(core::mem::size_of::<super::TasLock>(), 1);
    }
}

#[cfg(test)]
mod ttas_tests {
    #[allow(unused_imports)]
    use super::*;
    crate::baseline_tests!(super::TtasLock);

    #[test]
    fn try_lock_semantics() {
        use hemlock_core::raw::{RawLock, RawTryLock};
        let l = super::TtasLock::new();
        assert!(l.try_lock());
        assert!(!l.try_lock());
        unsafe { l.unlock() };
        assert!(l.try_lock());
        unsafe { l.unlock() };
    }
}
