//! The unified lock-algorithm catalog.
//!
//! One registry for every lock in the workspace — the Hemlock family from
//! `hemlock-core` plus the baselines in this crate — mapping stable string
//! keys (`"hemlock"`, `"hemlock.v1"`, `"mcs"`, `"clh"`, …) to:
//!
//! - a [`LockMeta`] descriptor (the Table 1 axes + capabilities), and
//! - a factory producing a type-erased [`DynLock`] handle for the
//!   runtime-selection layer ([`DynMutex`]).
//!
//! This is the Rust analog of the paper's `LD_PRELOAD` interposition setup
//! (§5): the figure/table binaries in `hemlock-bench` take
//! `--lock <key>[,<key>…]` and resolve algorithms here instead of each
//! carrying a private hard-coded type list.
//!
//! Two dispatch styles are offered:
//!
//! - **dynamic** — [`dyn_lock`] / [`dyn_mutex`] build boxed handles; one
//!   vtable call per lock operation;
//! - **static** — [`with_lock_type`] (or the [`for_each_lock!`](crate::for_each_lock) macro
//!   directly) monomorphizes a generic visitor for the chosen key, so
//!   benchmark inner loops stay as tight as the hand-written originals.
//!
//! The [`for_each_lock!`](crate::for_each_lock) macro is the single source of truth: the entry
//! table, the static dispatcher, and the conformance suite in
//! `tests/dyn_conformance.rs` are all generated from it.

use hemlock_core::dynlock::{boxed, boxed_try, DynLock, DynMutex};
use hemlock_core::meta::LockMeta;
use hemlock_core::raw::RawLock;

/// Re-exports of every catalogued lock type, so `for_each_lock!` callers
/// (and the macro's own `$crate::catalog::types::…` paths) resolve without
/// depending on `hemlock-core` directly.
pub mod types {
    pub use crate::{AndersonLock, ClhLock, McsLock, TasLock, TicketLock, TtasLock};
    pub use hemlock_core::hemlock::{
        Hemlock, HemlockAh, HemlockChain, HemlockInstrumented, HemlockNaive, HemlockOverlap,
        HemlockParking, HemlockV1, HemlockV2,
    };
    pub use hemlock_obs::ObservedHemlock;
}

/// Invokes a callback macro with the full catalog: a comma-separated list of
/// `(key, [aliases…], Type, trylock-capability)` tuples, where the
/// capability token is `try` (implements `RawTryLock`, including the timed
/// `try_lock_for` family) or `no_try` (CLH, Anderson: a waiter cannot
/// withdraw once advertised, so there is neither a trylock nor an
/// abortable path — their `LockMeta` reports both honestly).
///
/// This is the static-dispatch counterpart of the [`ENTRIES`] table — use
/// it to generate per-algorithm code (tests, dispatchers, tables) without
/// re-listing the algorithms:
///
/// ```
/// macro_rules! count_locks {
///     ($(($key:literal, [$($alias:literal),*], $ty:ty, $cap:ident)),+ $(,)?) => {
///         const N: usize = 0 $(+ { let _ = $key; 1 })+;
///     };
/// }
/// hemlock_locks::for_each_lock!(count_locks);
/// assert_eq!(N, hemlock_locks::catalog::ENTRIES.len());
/// ```
#[macro_export]
macro_rules! for_each_lock {
    ($cb:path) => {
        $cb! {
            ("hemlock", ["hemlock.ctr"], $crate::catalog::types::Hemlock, try),
            ("hemlock.naive", ["hemlock-"], $crate::catalog::types::HemlockNaive, try),
            ("hemlock.overlap", [], $crate::catalog::types::HemlockOverlap, try),
            ("hemlock.ah", [], $crate::catalog::types::HemlockAh, try),
            ("hemlock.v1", ["hemlock.hov1"], $crate::catalog::types::HemlockV1, try),
            ("hemlock.v2", ["hemlock.hov2"], $crate::catalog::types::HemlockV2, try),
            ("hemlock.parking", ["hemlock.cv"], $crate::catalog::types::HemlockParking, try),
            ("hemlock.chain", [], $crate::catalog::types::HemlockChain, try),
            ("hemlock.instr", ["hemlock.instrumented"], $crate::catalog::types::HemlockInstrumented, try),
            ("obs.hemlock", ["hemlock.obs"], $crate::catalog::types::ObservedHemlock, try),
            ("mcs", [], $crate::catalog::types::McsLock, try),
            ("clh", [], $crate::catalog::types::ClhLock, no_try),
            ("ticket", [], $crate::catalog::types::TicketLock, try),
            ("tas", [], $crate::catalog::types::TasLock, try),
            ("ttas", [], $crate::catalog::types::TtasLock, try),
            ("anderson", [], $crate::catalog::types::AndersonLock, no_try),
        }
    };
}

/// One catalog entry: a stable key, spelling aliases, the algorithm's
/// metadata, and a factory for runtime lock handles.
#[derive(Debug)]
pub struct CatalogEntry {
    /// Canonical selector key (`--lock` spelling), e.g. `"hemlock.v1"`.
    pub key: &'static str,
    /// Alternate accepted spellings.
    pub aliases: &'static [&'static str],
    /// The algorithm's descriptor (identical to the static type's `META`).
    pub meta: LockMeta,
    /// Builds a fresh, unlocked, type-erased handle on this algorithm.
    pub make: fn() -> Box<dyn DynLock>,
}

impl CatalogEntry {
    /// True when `name` selects this entry: matches the key, an alias, or
    /// the display name, ASCII-case-insensitively.
    pub fn matches(&self, name: &str) -> bool {
        self.key.eq_ignore_ascii_case(name)
            || self.meta.name.eq_ignore_ascii_case(name)
            || self.aliases.iter().any(|a| a.eq_ignore_ascii_case(name))
    }
}

macro_rules! gen_entries {
    ($(($key:literal, [$($alias:literal),*], $ty:ty, $cap:ident)),+ $(,)?) => {
        /// Every lock algorithm in the workspace, in catalog order
        /// (Hemlock family first, then the baselines).
        pub static ENTRIES: &[CatalogEntry] = &[
            $(CatalogEntry {
                key: $key,
                aliases: &[$($alias),*],
                meta: <$ty as RawLock>::META,
                make: gen_entries!(@maker $cap, $ty),
            }),+
        ];
    };
    (@maker try, $ty:ty) => { boxed_try::<$ty> };
    (@maker no_try, $ty:ty) => { boxed::<$ty> };
}
for_each_lock!(gen_entries);

/// Looks up one entry by key, alias, or display name (case-insensitive).
pub fn find(name: &str) -> Option<&'static CatalogEntry> {
    ENTRIES.iter().find(|e| e.matches(name.trim()))
}

/// Resolves a comma-separated selector list (the `--lock` argument) to
/// entries, preserving order and rejecting unknown or duplicate names with
/// a message that lists the valid keys.
pub fn resolve_list(list: &str) -> Result<Vec<&'static CatalogEntry>, String> {
    let mut out: Vec<&'static CatalogEntry> = Vec::new();
    for name in list.split(',') {
        let name = name.trim();
        if name.is_empty() {
            return Err(format!(
                "empty lock name in {list:?}; expected a comma-separated subset of: {}",
                keys().join(", ")
            ));
        }
        let entry = find(name)
            .ok_or_else(|| format!("unknown lock {name:?}; known locks: {}", keys().join(", ")))?;
        if out.iter().any(|e| core::ptr::eq(*e, entry)) {
            return Err(format!("lock {name:?} selected twice in {list:?}"));
        }
        out.push(entry);
    }
    Ok(out)
}

/// All canonical keys, in catalog order.
pub fn keys() -> Vec<&'static str> {
    ENTRIES.iter().map(|e| e.key).collect()
}

/// Entries suited to *many-instance* deployments such as sharded lock
/// tables: compact bodies (≤ 2 words) and trivial construction, judged from
/// each entry's [`LockMeta`]. This is the paper's headline trade-off — a
/// one-word lock makes millions of instances affordable — so `shardkv` and
/// `hemlock-shard` default to this subset (excluding CLH, whose per-lock
/// dummy element costs a padded cache line, and Anderson's waiting array).
pub fn shard_friendly() -> Vec<&'static CatalogEntry> {
    ENTRIES
        .iter()
        .filter(|e| e.meta.lock_words <= 2 && !e.meta.nontrivial_init)
        .collect()
}

/// Entries supporting **abortable (timed) acquisition** — `try_lock_for`
/// returns within the deadline bound and an aborted waiter never acquires
/// later — judged from each entry's [`LockMeta`]. `timeoutbench` sweeps
/// exactly this subset; CLH and Anderson are excluded because a waiter
/// cannot withdraw once it has advertised itself (CLH's tail link,
/// Anderson's claimed array slot).
pub fn abortable() -> Vec<&'static CatalogEntry> {
    ENTRIES.iter().filter(|e| e.meta.abortable).collect()
}

/// Builds a runtime lock handle for `name`.
pub fn dyn_lock(name: &str) -> Result<Box<dyn DynLock>, String> {
    let entry = find(name)
        .ok_or_else(|| format!("unknown lock {name:?}; known locks: {}", keys().join(", ")))?;
    Ok((entry.make)())
}

/// Builds a [`DynMutex`] protecting `value` with the algorithm `name`.
pub fn dyn_mutex<T>(name: &str, value: T) -> Result<DynMutex<T>, String> {
    Ok(DynMutex::new(dyn_lock(name)?, value))
}

/// A generic computation instantiated per statically-dispatched lock type —
/// the visitor side of [`with_lock_type`].
pub trait LockVisitor {
    /// Result produced per lock type.
    type Output;
    /// Runs the computation with the chosen algorithm as `L`.
    fn visit<L: RawLock + 'static>(self, entry: &'static CatalogEntry) -> Self::Output;
}

macro_rules! gen_dispatch {
    ($(($key:literal, [$($alias:literal),*], $ty:ty, $cap:ident)),+ $(,)?) => {
        /// Statically dispatches `visitor` on the algorithm selected by
        /// `name`: the visitor's generic `visit` is monomorphized for the
        /// matching type, so the hot path carries no vtable indirection.
        /// Returns `None` for unknown names.
        pub fn with_lock_type<V: LockVisitor>(name: &str, visitor: V) -> Option<V::Output> {
            let entry = find(name)?;
            match entry.key {
                $($key => Some(visitor.visit::<$ty>(entry)),)+
                _ => unreachable!("catalog key missing from dispatch table"),
            }
        }
    };
}
for_each_lock!(gen_dispatch);

/// A generic computation instantiated per statically-dispatched
/// **trylock/timed-capable** lock type — the visitor side of
/// [`with_timed_lock_type`]. The `RawTryLock` bound gives the visitor's
/// body `try_lock` and the `try_lock_for` family at zero dispatch cost,
/// which is how `timeoutbench` keeps its measurement loop monomorphized.
pub trait TimedLockVisitor {
    /// Result produced per lock type.
    type Output;
    /// Runs the computation with the chosen algorithm as `L`.
    fn visit<L: hemlock_core::raw::RawTryLock + 'static>(
        self,
        entry: &'static CatalogEntry,
    ) -> Self::Output;
}

macro_rules! gen_timed_dispatch {
    ($(($key:literal, [$($alias:literal),*], $ty:ty, $cap:ident)),+ $(,)?) => {
        /// Statically dispatches `visitor` on the algorithm selected by
        /// `name`, restricted to the trylock/timed-capable subset. Returns
        /// `None` for unknown names **and** for known entries without a
        /// trylock path (CLH, Anderson) — check
        /// [`CatalogEntry::meta`]`.abortable` to distinguish.
        pub fn with_timed_lock_type<V: TimedLockVisitor>(
            name: &str,
            visitor: V,
        ) -> Option<V::Output> {
            let entry = find(name)?;
            match entry.key {
                $($key => gen_timed_dispatch!(@arm $cap, $ty, visitor, entry),)+
                _ => unreachable!("catalog key missing from timed dispatch table"),
            }
        }
    };
    (@arm try, $ty:ty, $visitor:ident, $entry:ident) => {
        Some($visitor.visit::<$ty>($entry))
    };
    (@arm no_try, $ty:ty, $visitor:ident, $entry:ident) => {{
        let _ = $visitor;
        None
    }};
}
for_each_lock!(gen_timed_dispatch);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_by_key_alias_display_name_case_insensitively() {
        assert_eq!(find("hemlock").unwrap().meta.name, "Hemlock");
        assert_eq!(find("hemlock.ctr").unwrap().key, "hemlock");
        assert_eq!(find("Hemlock-").unwrap().key, "hemlock.naive");
        assert_eq!(find("MCS").unwrap().key, "mcs");
        assert_eq!(find("mCs").unwrap().key, "mcs");
        assert!(find("nope").is_none());
    }

    #[test]
    fn resolve_list_preserves_order_and_reports_errors() {
        let picked = resolve_list("mcs, clh,hemlock").unwrap();
        assert_eq!(
            picked.iter().map(|e| e.key).collect::<Vec<_>>(),
            ["mcs", "clh", "hemlock"]
        );
        assert!(resolve_list("mcs,bogus")
            .unwrap_err()
            .contains("known locks"));
        assert!(resolve_list("mcs,,clh")
            .unwrap_err()
            .contains("empty lock name"));
        assert!(resolve_list("mcs,MCS").unwrap_err().contains("twice"));
    }

    #[test]
    fn every_entry_builds_a_working_dyn_lock() {
        for entry in ENTRIES {
            let lock = (entry.make)();
            assert_eq!(lock.meta(), entry.meta, "{}", entry.key);
            lock.lock();
            // Safety: acquired on this thread just above.
            unsafe { lock.unlock() };
        }
    }

    #[test]
    fn try_capability_agrees_between_meta_and_factory() {
        for entry in ENTRIES {
            let lock = (entry.make)();
            let outcome = lock.try_lock();
            if entry.meta.try_lock {
                assert_eq!(outcome, Ok(true), "{}", entry.key);
                // Safety: try_lock conferred ownership.
                unsafe { lock.unlock() };
            } else {
                assert!(outcome.is_err(), "{}", entry.key);
            }
        }
    }

    #[test]
    fn abortable_capability_agrees_between_meta_and_dyn_handle() {
        use core::time::Duration;
        for entry in ENTRIES {
            let lock = (entry.make)();
            let outcome = lock.try_lock_for(Duration::from_millis(5));
            if entry.meta.abortable {
                assert_eq!(outcome, Ok(true), "{}: free timed acquire", entry.key);
                // Safety: the timed acquisition conferred ownership.
                unsafe { lock.unlock() };
            } else {
                assert!(outcome.is_err(), "{}", entry.key);
            }
        }
    }

    #[test]
    fn abortable_is_the_withdrawable_subset() {
        let timed = abortable();
        for must in ["hemlock", "hemlock.naive", "tas", "ttas", "ticket", "mcs"] {
            assert!(
                timed.iter().any(|e| e.key == must),
                "{must} must be abortable"
            );
        }
        // CLH's tail link and Anderson's array slot are commitments.
        assert!(!timed.iter().any(|e| e.key == "clh"));
        assert!(!timed.iter().any(|e| e.key == "anderson"));
        // Abortable without a trylock path would be incoherent.
        assert!(timed.iter().all(|e| e.meta.try_lock));
    }

    #[test]
    fn timed_dispatch_covers_exactly_the_try_capable_entries() {
        struct TimedProbe;
        impl TimedLockVisitor for TimedProbe {
            type Output = bool;
            fn visit<L: hemlock_core::raw::RawTryLock + 'static>(
                self,
                _entry: &'static CatalogEntry,
            ) -> bool {
                let l = L::default();
                let got = l.try_lock_for(core::time::Duration::from_millis(5));
                if got {
                    // Safety: the timed acquisition conferred ownership.
                    unsafe { l.unlock() };
                }
                got
            }
        }
        for entry in ENTRIES {
            let hit = with_timed_lock_type(entry.key, TimedProbe);
            assert_eq!(hit.is_some(), entry.meta.try_lock, "{}", entry.key);
            if let Some(acquired) = hit {
                assert!(acquired, "{}: free timed acquire must succeed", entry.key);
            }
        }
        assert!(with_timed_lock_type("bogus", TimedProbe).is_none());
    }

    #[test]
    fn dyn_mutex_by_name() {
        let m = dyn_mutex("ticket", 41u32).unwrap();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.meta().name, "Ticket");
        assert!(dyn_mutex("bogus", 0).is_err());
    }

    #[test]
    fn static_dispatch_reaches_the_right_type() {
        struct NameOf;
        impl LockVisitor for NameOf {
            type Output = (&'static str, usize);
            fn visit<L: RawLock + 'static>(self, _entry: &'static CatalogEntry) -> Self::Output {
                (L::META.name, core::mem::size_of::<L>())
            }
        }
        let (name, size) = with_lock_type("mcs", NameOf).unwrap();
        assert_eq!(name, "MCS");
        assert_eq!(size, core::mem::size_of::<crate::McsLock>());
        assert!(with_lock_type("bogus", NameOf).is_none());
    }

    #[test]
    fn shard_friendly_is_the_compact_subset() {
        let friendly = shard_friendly();
        assert!(friendly.iter().any(|e| e.key == "hemlock"));
        assert!(friendly.iter().any(|e| e.key == "mcs"));
        assert!(friendly.iter().any(|e| e.key == "ticket"));
        // CLH pays a padded dummy element per lock; Anderson a waiting array.
        assert!(!friendly.iter().any(|e| e.key == "clh"));
        assert!(!friendly.iter().any(|e| e.key == "anderson"));
        for e in &friendly {
            assert!(e.meta.lock_bytes() <= 2 * core::mem::size_of::<usize>());
        }
    }

    #[test]
    fn locked_hint_agrees_with_lock_state() {
        for entry in ENTRIES {
            let lock = (entry.make)();
            if let Some(held) = lock.is_locked_hint() {
                assert!(!held, "{} hints held while unlocked", entry.key);
                lock.lock();
                assert_eq!(
                    lock.is_locked_hint(),
                    Some(true),
                    "{} hints free while held",
                    entry.key
                );
                // Safety: acquired on this thread just above.
                unsafe { lock.unlock() };
                assert_eq!(lock.is_locked_hint(), Some(false), "{}", entry.key);
            }
        }
    }

    #[test]
    fn keys_are_unique_and_nonempty() {
        let keys = keys();
        assert!(keys.len() >= 15);
        let mut dedup = keys.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len());
    }
}
