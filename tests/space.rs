//! Table 1 assertions: the space claims, measured from the real types.

use hemlock_core::hemlock::{
    Hemlock, HemlockAh, HemlockNaive, HemlockOverlap, HemlockV1, HemlockV2,
};
use hemlock_core::pad::CACHE_LINE;
use hemlock_core::raw::RawLock;
use hemlock_core::registry::GrantCell;
use hemlock_locks::{ClhLock, McsLock, TicketLock};

const WORD: usize = core::mem::size_of::<usize>();

#[test]
fn hemlock_lock_body_is_one_word_all_variants() {
    assert_eq!(core::mem::size_of::<Hemlock>(), WORD);
    assert_eq!(core::mem::size_of::<HemlockNaive>(), WORD);
    assert_eq!(core::mem::size_of::<HemlockOverlap>(), WORD);
    assert_eq!(core::mem::size_of::<HemlockAh>(), WORD);
    assert_eq!(core::mem::size_of::<HemlockV1>(), WORD);
    assert_eq!(core::mem::size_of::<HemlockV2>(), WORD);
}

#[test]
fn baselines_are_two_words() {
    assert_eq!(core::mem::size_of::<McsLock>(), 2 * WORD);
    assert_eq!(core::mem::size_of::<ClhLock>(), 2 * WORD);
    assert_eq!(core::mem::size_of::<TicketLock>(), 2 * WORD);
}

#[test]
fn lock_words_constants_match_reality() {
    assert_eq!(
        Hemlock::META.lock_words * WORD,
        core::mem::size_of::<Hemlock>()
    );
    assert_eq!(
        McsLock::META.lock_words * WORD,
        core::mem::size_of::<McsLock>()
    );
    assert_eq!(
        ClhLock::META.lock_words * WORD,
        core::mem::size_of::<ClhLock>()
    );
    assert_eq!(
        TicketLock::META.lock_words * WORD,
        core::mem::size_of::<TicketLock>()
    );
}

#[test]
fn queue_elements_are_padded_to_a_cache_line() {
    // §2.3: "we also elected to align and pad the MCS and CLH queue nodes
    // [...] raising the size of E to a cache line."
    assert_eq!(McsLock::ELEMENT_BYTES, CACHE_LINE);
    assert_eq!(ClhLock::ELEMENT_BYTES, CACHE_LINE);
}

#[test]
fn grant_field_is_sole_occupant_of_a_cache_line() {
    // §2.3: "we opted to sequester the Grant field as the sole occupant of
    // a cache line."
    assert_eq!(core::mem::size_of::<GrantCell>(), CACHE_LINE);
    assert_eq!(core::mem::align_of::<GrantCell>(), CACHE_LINE);
}

#[test]
fn space_example_from_section_2_3() {
    // "lets say lock L is owned by thread T1 while threads T2 and T3 wait
    // [...] The space consumed is 2 words for L plus 3*E for the queue
    // elements. In comparison, Hemlock consumes one word for L and 3 words
    // of thread-local state for the Grant fields."
    let mcs_total = core::mem::size_of::<McsLock>() + 3 * McsLock::ELEMENT_BYTES;
    let hemlock_marginal = core::mem::size_of::<Hemlock>();
    // The Hemlock per-thread Grant is amortized across every lock in the
    // program; the marginal cost of one more Hemlock is one word.
    assert_eq!(hemlock_marginal, WORD);
    assert!(mcs_total >= 2 * WORD + 3 * CACHE_LINE);
}

#[test]
fn hemlock_has_no_per_held_or_per_wait_space() {
    // Holding or waiting on N Hemlock locks allocates nothing beyond the
    // one thread Grant word: demonstrate by holding many locks at once.
    let locks: Vec<Hemlock> = (0..64).map(|_| Hemlock::new()).collect();
    for l in &locks {
        l.lock();
    }
    for l in locks.iter().rev() {
        // Safety: acquired above on this thread.
        unsafe { l.unlock() };
    }
    // (The assertion is structural: Hemlock's lock() allocates no queue
    // element; MCS would have needed 64 elements here.)
}
