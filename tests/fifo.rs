//! FIFO admission (Theorem 8) for the real lock implementations.
//!
//! Arrivals are strictly sequenced by watching the lock's arrival word
//! change (Tail for queue locks, the ticket dispenser for Ticket), so the
//! doorstep order is known exactly; completion order must match.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const WAITERS: usize = 5;

/// Drives `WAITERS` sequenced arrivals against a held lock and asserts
/// FIFO completion. `arrival_word` must change when a waiter enqueues.
fn fifo_check<L, F>(lock: Arc<L>, lock_fn: fn(&L), unlock_fn: unsafe fn(&L), arrival_word: F)
where
    L: Send + Sync + 'static,
    F: Fn(&L) -> u64,
{
    lock_fn(&lock);
    let order = Arc::new(AtomicUsize::new(0));
    let slots: Arc<Vec<AtomicUsize>> =
        Arc::new((0..WAITERS).map(|_| AtomicUsize::new(usize::MAX)).collect());
    let mut handles = Vec::new();
    for i in 0..WAITERS {
        let before = arrival_word(&lock);
        let (lock2, order2, slots2) = (Arc::clone(&lock), Arc::clone(&order), Arc::clone(&slots));
        handles.push(std::thread::spawn(move || {
            lock_fn(&lock2);
            slots2[i].store(order2.fetch_add(1, Ordering::AcqRel), Ordering::Release);
            // Safety: just acquired on this thread.
            unsafe { unlock_fn(&lock2) };
        }));
        while arrival_word(&lock) == before {
            std::thread::yield_now();
        }
    }
    // Safety: acquired at the top on this thread.
    unsafe { unlock_fn(&lock) };
    for h in handles {
        h.join().unwrap();
    }
    for i in 0..WAITERS {
        assert_eq!(
            slots[i].load(Ordering::Acquire),
            i,
            "waiter {i} out of order"
        );
    }
}

macro_rules! fifo_test_tail {
    ($name:ident, $lock:ty) => {
        #[test]
        fn $name() {
            use hemlock_core::raw::RawLock;
            for _ in 0..3 {
                fifo_check::<$lock, _>(
                    Arc::new(<$lock>::default()),
                    <$lock>::lock,
                    <$lock>::unlock,
                    |l| l.tail_word() as u64,
                );
            }
        }
    };
}

fifo_test_tail!(hemlock_is_fifo, hemlock_core::hemlock::Hemlock);
fifo_test_tail!(hemlock_naive_is_fifo, hemlock_core::hemlock::HemlockNaive);
fifo_test_tail!(
    hemlock_overlap_is_fifo,
    hemlock_core::hemlock::HemlockOverlap
);
fifo_test_tail!(hemlock_ah_is_fifo, hemlock_core::hemlock::HemlockAh);
fifo_test_tail!(hemlock_v1_is_fifo, hemlock_core::hemlock::HemlockV1);
fifo_test_tail!(hemlock_v2_is_fifo, hemlock_core::hemlock::HemlockV2);
fifo_test_tail!(
    hemlock_parking_is_fifo,
    hemlock_core::hemlock::HemlockParking
);
fifo_test_tail!(hemlock_chain_is_fifo, hemlock_core::hemlock::HemlockChain);
fifo_test_tail!(mcs_is_fifo, hemlock_locks::McsLock);
fifo_test_tail!(clh_is_fifo, hemlock_locks::ClhLock);

#[test]
fn ticket_is_fifo() {
    use hemlock_core::raw::RawLock;
    use hemlock_locks::TicketLock;
    for _ in 0..3 {
        fifo_check::<TicketLock, _>(
            Arc::new(TicketLock::default()),
            TicketLock::lock,
            TicketLock::unlock,
            |l| l.arrivals(),
        );
    }
}
