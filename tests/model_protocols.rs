//! Exhaustive model checking of the post-seed protocols, spanning
//! simlock + model.
//!
//! Positive direction: every scenario in the canonical registry
//! ([`post_seed_scenarios`]) explores its full small-scope state space
//! (`exhaustive == true`) with zero invariant violations. Negative
//! direction: each deliberately-injected protocol bug (a skipped Dekker
//! re-check, a dropped racing grant, an unordered two-shard acquire, a
//! release mid-update, a skipped writer-flag check, a leaked read
//! indicator, a DONE store deferred past the lock release) is caught by a
//! named invariant or as a deadlock. The long-horizon seeded random walks
//! (the `modelbench` CI job runs millions of steps) get a smoke test here.

use hemlock_model::{check_proto_random_run, explore_proto, post_seed_scenarios};
use hemlock_simlock::protocols::{
    DekkerBug, DekkerSim, FcBug, FcRole, FcSim, QueueBug, QueueRole, RwBug, RwRole, RwSim,
    TwoShardBug, TwoShardOp, TwoShardSim, WakerQueueSim,
};
use hemlock_simlock::{ProtoWorld, ProtocolSim};

const MAX_STATES: usize = 3_000_000;

// ---------------------------------------------------------------------------
// Positive: every canonical scenario is exhaustively clean.
// ---------------------------------------------------------------------------

#[test]
fn all_post_seed_scenarios_exhaustively_clean() {
    for s in post_seed_scenarios() {
        let report = s.explore(MAX_STATES);
        assert!(report.clean(), "{}: {:?}", s.name, report.violations);
        assert!(
            report.exhaustive,
            "{}: state cap hit at {} states",
            s.name, report.states
        );
        assert!(
            report.terminal_states >= 1,
            "{}: no terminal state reached",
            s.name
        );
        assert!(
            report.states > 100,
            "{}: trivially small space ({} states) — scenario misconfigured",
            s.name,
            report.states
        );
    }
}

// ---------------------------------------------------------------------------
// Negative: every injected bug is caught.
// ---------------------------------------------------------------------------

/// Explores a buggy configuration and asserts the explorer reports at least
/// one violation, all of them among `expected` invariant names.
fn assert_caught<P: ProtocolSim + Clone>(proto: P, expected: &[&str], label: &str) {
    let report = explore_proto(ProtoWorld::new(proto), MAX_STATES);
    assert!(
        !report.clean(),
        "{label}: injected bug escaped the explorer ({} states, exhaustive: {})",
        report.states,
        report.exhaustive
    );
    for v in &report.violations {
        assert!(
            expected.contains(&v.invariant),
            "{label}: unexpected invariant {:?} (expected one of {expected:?}): {}",
            v.invariant,
            v.detail
        );
    }
}

#[test]
fn wakerset_skipped_recheck_loses_wakeups() {
    // Dropping the fence-ordered re-try after registration: an unlocker can
    // read the registration word before the store lands, so the parked
    // waiter is never woken — a deadlock under the parking-as-spinning
    // convention.
    assert_caught(
        DekkerSim::with_bug(3, 2, DekkerBug::SkipRecheck),
        &["deadlock-freedom", "no-lost-wakeup"],
        "wakerset SkipRecheck",
    );
}

#[test]
fn wakerset_notify_before_release_loses_wakeups() {
    // Reading the registration word before the unlock store is the other
    // half of the Dekker pair: a waiter that registers between the two
    // observes the lock held, parks, and is never woken.
    assert_caught(
        DekkerSim::with_bug(3, 2, DekkerBug::NotifyBeforeRelease),
        &["deadlock-freedom", "no-lost-wakeup"],
        "wakerset NotifyBeforeRelease",
    );
}

#[test]
fn wakerqueue_dropped_racing_grant_strands_the_lock() {
    // A cancel that swallows a racing grant leaves the owner word naming a
    // departed thread: later waiters park forever (deadlock), or the run
    // terminates with the owner word stranded.
    assert_caught(
        WakerQueueSim::with_bug(
            vec![
                QueueRole::Lock { rounds: 2 },
                QueueRole::Cancel,
                QueueRole::Lock { rounds: 1 },
            ],
            QueueBug::DropRacingGrant,
        ),
        &["deadlock-freedom", "no-stranded-grant"],
        "wakerqueue DropRacingGrant",
    );
}

fn overlapping_ops() -> (Vec<TwoShardOp>, Vec<hemlock_simlock::Val>) {
    (
        vec![
            TwoShardOp {
                a: 0,
                b: 1,
                rounds: 2,
            },
            TwoShardOp {
                a: 2,
                b: 1,
                rounds: 2,
            },
        ],
        vec![4, 0, 4],
    )
}

#[test]
fn with_two_unordered_blocking_acquire_deadlocks() {
    // A crossing pair — one thread transfers 0→1, the other 1→0 — is the
    // classic ABBA deadlock `with_two`'s index ordering exists to prevent:
    // in argument order each holds its first shard while blocking on the
    // other's. (The ordered protocol normalizes both to (0, 1).)
    let crossing = vec![
        TwoShardOp {
            a: 1,
            b: 0,
            rounds: 2,
        },
        TwoShardOp {
            a: 0,
            b: 1,
            rounds: 2,
        },
    ];
    assert_caught(
        TwoShardSim::with_bug(crossing, vec![4, 4], TwoShardBug::BlockingUnordered),
        &["deadlock-freedom"],
        "with_two BlockingUnordered",
    );
}

#[test]
fn with_two_release_mid_update_tears_the_pair() {
    // Releasing both locks between the two slot writes exposes a state
    // where the pair's conservation sum is broken while no lock is held.
    let (ops, init) = overlapping_ops();
    assert_caught(
        TwoShardSim::with_bug(ops, init, TwoShardBug::ReleaseMidUpdate),
        &["no-torn-pair"],
        "with_two ReleaseMidUpdate",
    );
}

fn rw_roles() -> Vec<RwRole> {
    vec![
        RwRole {
            writer: true,
            timed: false,
            rounds: 1,
        },
        RwRole {
            writer: false,
            timed: false,
            rounds: 2,
        },
        RwRole {
            writer: false,
            timed: true,
            rounds: 1,
        },
    ]
}

#[test]
fn rw_skipped_wflag_check_coexists_with_writer() {
    // A reader that treats its stripe increment alone as a license (without
    // checking the writer flag) can sit in its CS while a writer that
    // already drained is in its own.
    assert_caught(
        RwSim::with_bug(2, rw_roles(), RwBug::SkipWflagCheck),
        &["readers-exclude-writer"],
        "rw SkipWflagCheck",
    );
}

#[test]
fn rw_leaked_indicator_on_abort_wedges_writers() {
    // A timed reader that gives up without withdrawing its increment leaves
    // the stripe nonzero forever: an untimed writer's drain never
    // completes (deadlock), and the indicator census is inconsistent.
    assert_caught(
        RwSim::with_bug(2, rw_roles(), RwBug::LeakOnAbort),
        &[
            "deadlock-freedom",
            "indicator-consistency",
            "clean-indicators",
        ],
        "rw LeakOnAbort",
    );
}

#[test]
fn fc_release_before_done_breaks_claim_discipline() {
    // Deferring the DONE stores past the lock release exposes CLAIMED
    // records with the lock free — the combiner-election hazard the batch
    // layer's DONE-before-release rule forbids.
    assert_caught(
        FcSim::with_bug(
            vec![
                FcRole { cancel: false },
                FcRole { cancel: false },
                FcRole { cancel: true },
            ],
            FcBug::ReleaseBeforeDone,
        ),
        &["claimed-implies-locked"],
        "fc ReleaseBeforeDone",
    );
}

// ---------------------------------------------------------------------------
// Long-horizon seeded random walks (smoke; modelbench runs the full budget).
// ---------------------------------------------------------------------------

#[test]
fn random_walks_stay_clean_across_seeds() {
    for s in post_seed_scenarios() {
        for seed in [7, 0x9E3779B97F4A7C15u64] {
            let report = s.random_run(seed, 20_000);
            assert!(
                report.clean(),
                "{} seed {seed}: {:?}",
                s.name,
                report.violation
            );
            assert!(report.steps >= 20_000);
            assert!(
                report.completed_runs >= 1,
                "{} seed {seed}: no run completed",
                s.name
            );
        }
    }
}

#[test]
fn random_walk_driver_reports_injected_bug() {
    // The long-horizon driver must catch what the explorer catches: the
    // reader/writer coexistence bug trips within a few thousand steps on
    // any seed with overwhelming probability.
    let report = check_proto_random_run(
        || ProtoWorld::new(RwSim::with_bug(2, rw_roles(), RwBug::SkipWflagCheck)),
        42,
        200_000,
    );
    assert!(
        report.violation.is_some(),
        "driver missed the injected bug after {} steps",
        report.steps
    );
}
