//! Enforces the observability cost contract: with collection disabled
//! (`hemlock_obs::set_enabled(false)`), the `Observed` wrapper adds at
//! most one relaxed load and an untaken branch per operation, which must
//! keep uncontended lock/unlock within 5% of the raw lock.
//!
//! Measurement discipline for a ~20ns path: `black_box` the lock
//! reference so both monomorphizations run the same loop shape,
//! interleave raw/observed trials so frequency drift hits both sides,
//! and compare min-of-trials (the run least disturbed by the scheduler).
//!
//! This file deliberately holds exactly one `#[test]`: the enabled flag
//! is process-global, so the measurement needs a process where nothing
//! else turns collection back on.

use hemlock_core::hemlock::Hemlock;
use hemlock_core::raw::RawLock;
use hemlock_obs::ObservedHemlock;
use std::hint::black_box;
use std::time::Instant;

const ITERS: u32 = 2_000_000;
const TRIALS: usize = 9;

fn lock_unlock_ns<L: RawLock>(l: &L) -> u128 {
    let t0 = Instant::now();
    for _ in 0..ITERS {
        let l = black_box(l);
        l.lock();
        // Safety: acquired above on this thread.
        unsafe { l.unlock() };
    }
    t0.elapsed().as_nanos()
}

#[test]
fn disabled_observer_stays_within_five_percent() {
    // The 5% contract is about the shipped code: it needs the observer's
    // forwarding methods inlined, which debug builds don't do. Run the
    // machinery as a smoke test there, but only enforce in release (CI's
    // bench-trajectory job runs the release profile).
    let budget = if cfg!(debug_assertions) {
        f64::INFINITY
    } else {
        1.05
    };
    hemlock_obs::set_enabled(false);
    let raw = Hemlock::default();
    let obs = ObservedHemlock::default();
    // Warm both paths (lazy statics, branch predictors, frequency).
    lock_unlock_ns(&raw);
    lock_unlock_ns(&obs);

    // Whole-measurement retries absorb machine-level noise (CI boxes
    // share cores); one clean pass under the bound is the claim.
    let mut best_ratio = f64::INFINITY;
    for _ in 0..4 {
        let mut raw_min = u128::MAX;
        let mut obs_min = u128::MAX;
        for _ in 0..TRIALS {
            raw_min = raw_min.min(lock_unlock_ns(&raw));
            obs_min = obs_min.min(lock_unlock_ns(&obs));
        }
        best_ratio = best_ratio.min(obs_min as f64 / raw_min as f64);
        if best_ratio <= budget {
            break;
        }
    }
    eprintln!(
        "obs_overhead: disabled wrapper at {:+.1}% vs raw lock/unlock",
        (best_ratio - 1.0) * 100.0
    );
    assert!(
        best_ratio <= budget,
        "disabled Observed wrapper costs {:.1}% on uncontended lock/unlock (budget 5%)",
        (best_ratio - 1.0) * 100.0
    );
}
