//! Exhaustive model checking of the appendix variants (Listings 3–6).
//!
//! These are the risky ones: Overlap's deferred ack admits the stale-grant
//! pathology its line-6 check exists to prevent (Appendix A documents the
//! exact exclusion failure); AH's speculative publish reorders the handover
//! against the Tail CAS; V1's `L|1` tag adds a third Grant state. Every
//! interleaving of small configurations is enumerated for each.

use hemlock_model::{check_progress, explore, ExploreConfig};
use hemlock_simlock::algos::{HemlockFlavor, HemlockSim};
use hemlock_simlock::{Action, Program, World};

fn assert_clean(world: World<HemlockSim>, label: &str) {
    let report = explore(
        world,
        ExploreConfig {
            max_states: 3_000_000,
            check_fere_local: true,
        },
    );
    assert!(report.clean(), "{label}: {:?}", report.violations);
    assert!(
        report.exhaustive,
        "{label}: cap hit at {} states",
        report.states
    );
    assert!(report.terminal_states >= 1, "{label}");
}

#[test]
fn all_flavors_two_threads_two_rounds() {
    for flavor in HemlockFlavor::ALL {
        let programs = vec![
            Program::lock_unlock(0, 0, 0, 2),
            Program::lock_unlock(0, 0, 0, 2),
        ];
        assert_clean(
            World::new(HemlockSim::new(2, 1, flavor), programs),
            &format!("{flavor:?} 2t x 2r"),
        );
    }
}

#[test]
fn all_flavors_two_threads_with_cs_work() {
    for flavor in HemlockFlavor::ALL {
        let programs = vec![
            Program::lock_unlock(0, 2, 1, 2),
            Program::lock_unlock(0, 2, 1, 2),
        ];
        assert_clean(
            World::new(HemlockSim::new(2, 1, flavor), programs),
            &format!("{flavor:?} cs-work"),
        );
    }
}

#[test]
fn all_flavors_three_threads_one_round() {
    for flavor in HemlockFlavor::ALL {
        let programs = vec![
            Program::lock_unlock(0, 0, 0, 1),
            Program::lock_unlock(0, 0, 0, 1),
            Program::lock_unlock(0, 0, 0, 1),
        ];
        assert_clean(
            World::new(HemlockSim::new(3, 1, flavor), programs),
            &format!("{flavor:?} 3t"),
        );
    }
}

#[test]
fn overlap_tight_reacquisition_of_same_lock() {
    // The Appendix A pathology: "If thread T1 were to enqueue an element
    // that contains a residual Grant value that happens to match that of
    // the lock, then when a successor T2 enqueues after T1, it will
    // incorrectly see that address in T1's grant field and then incorrectly
    // enter the critical section, resulting in exclusion and safety failure
    // and a corrupt chain. The check at line 6 prevents that pathology."
    // Three rounds of tight same-lock reacquisition explores exactly that
    // window exhaustively.
    let programs = vec![
        Program::lock_unlock(0, 0, 0, 3),
        Program::lock_unlock(0, 0, 0, 3),
    ];
    assert_clean(
        World::new(HemlockSim::new(2, 1, HemlockFlavor::Overlap), programs),
        "overlap tight reacquisition",
    );
}

#[test]
fn v1_tag_with_two_locks_nested() {
    // V1's markers interact across locks: a holder of L0+L1 can have its
    // tag overwritten by a pass of the other lock (marker loss is benign
    // but must never break exclusion or FIFO).
    let nested = Program::new(
        vec![
            Action::Acquire(0),
            Action::Acquire(1),
            Action::Release(1),
            Action::Release(0),
        ],
        1,
    );
    let single = Program::lock_unlock(1, 0, 0, 2);
    assert_clean(
        World::new(
            HemlockSim::new(2, 2, HemlockFlavor::V1),
            vec![nested, single],
        ),
        "v1 nested + single",
    );
}

#[test]
fn ah_and_v2_nested_two_locks() {
    for flavor in [HemlockFlavor::Ah, HemlockFlavor::V2] {
        let nested = Program::new(
            vec![
                Action::Acquire(0),
                Action::Acquire(1),
                Action::Release(1),
                Action::Release(0),
            ],
            1,
        );
        assert_clean(
            World::new(
                HemlockSim::new(2, 2, flavor),
                vec![nested.clone(), nested.clone()],
            ),
            &format!("{flavor:?} nested"),
        );
    }
}

#[test]
fn all_flavors_progress_under_fair_schedules() {
    for flavor in HemlockFlavor::ALL {
        let mk = || {
            World::new(
                HemlockSim::new(3, 1, flavor),
                vec![
                    Program::lock_unlock(0, 1, 1, 8),
                    Program::lock_unlock(0, 1, 1, 8),
                    Program::lock_unlock(0, 1, 1, 8),
                ],
            )
        };
        assert!(check_progress(mk, 15, 3_000_000), "{flavor:?} liveness");
    }
}

#[test]
fn all_flavors_multiwait_junction_config() {
    for flavor in HemlockFlavor::ALL {
        let programs = vec![
            Program::multiwait_leader(2, 1),
            Program::lock_unlock(0, 0, 0, 1),
            Program::lock_unlock(1, 0, 0, 1),
        ];
        assert_clean(
            World::new(HemlockSim::new(3, 2, flavor), programs),
            &format!("{flavor:?} junction"),
        );
    }
}
