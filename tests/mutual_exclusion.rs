//! Cross-crate integration: mutual exclusion under real contention for
//! every lock in the workspace (the Hemlock family and all baselines).

use hemlock_core::hemlock::{
    Hemlock, HemlockAh, HemlockChain, HemlockNaive, HemlockOverlap, HemlockParking, HemlockV1,
    HemlockV2,
};
use hemlock_core::raw::RawLock;
use hemlock_core::Mutex;
use hemlock_locks::{AndersonLock, ClhLock, McsLock, TasLock, TicketLock, TtasLock};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn counter_torture<L: RawLock + 'static>(threads: usize, iters: u64) {
    let m: Arc<Mutex<u64, L>> = Arc::new(Mutex::new(0));
    std::thread::scope(|s| {
        for _ in 0..threads {
            let m = Arc::clone(&m);
            s.spawn(move || {
                for _ in 0..iters {
                    *m.lock() += 1;
                }
            });
        }
    });
    assert_eq!(*m.lock(), threads as u64 * iters, "{}", L::META.name);
}

fn overlap_detector<L: RawLock + 'static>(threads: usize, iters: u64) {
    let l = Arc::new(L::default());
    let in_cs = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        for _ in 0..threads {
            let l = Arc::clone(&l);
            let in_cs = Arc::clone(&in_cs);
            s.spawn(move || {
                for _ in 0..iters {
                    l.lock();
                    assert!(
                        !in_cs.swap(true, Ordering::AcqRel),
                        "{} overlap",
                        L::META.name
                    );
                    std::hint::spin_loop();
                    in_cs.store(false, Ordering::Release);
                    // Safety: acquired above on this thread.
                    unsafe { l.unlock() };
                }
            });
        }
    });
}

macro_rules! exclusion_tests {
    ($($name:ident => $lock:ty),+ $(,)?) => {
        $(
            #[test]
            fn $name() {
                counter_torture::<$lock>(4, 20_000);
                overlap_detector::<$lock>(4, 10_000);
            }
        )+
    };
}

exclusion_tests! {
    hemlock_ctr => Hemlock,
    hemlock_naive => HemlockNaive,
    hemlock_overlap => HemlockOverlap,
    hemlock_ah => HemlockAh,
    hemlock_v1 => HemlockV1,
    hemlock_v2 => HemlockV2,
    hemlock_parking => HemlockParking,
    hemlock_chain => HemlockChain,
    mcs => McsLock,
    clh => ClhLock,
    ticket => TicketLock,
    tas => TasLock,
    ttas => TtasLock,
    anderson => AndersonLock,
}

#[test]
fn mixed_lock_types_coexist() {
    // Different algorithms in one program, one thread touching all of them
    // (each family has its own thread-local Grant slot / node pools).
    let a: Mutex<u64, Hemlock> = Mutex::new(0);
    let b: Mutex<u64, McsLock> = Mutex::new(0);
    let c: Mutex<u64, ClhLock> = Mutex::new(0);
    let d: Mutex<u64, HemlockV1> = Mutex::new(0);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..5_000 {
                    let mut ga = a.lock();
                    let mut gb = b.lock();
                    let mut gc = c.lock();
                    let mut gd = d.lock();
                    *ga += 1;
                    *gb += 1;
                    *gc += 1;
                    *gd += 1;
                }
            });
        }
    });
    assert_eq!(*a.lock(), 20_000);
    assert_eq!(*b.lock(), 20_000);
    assert_eq!(*c.lock(), 20_000);
    assert_eq!(*d.lock(), 20_000);
}
