//! Cross-crate integration: mutual exclusion under real contention for
//! every lock in the workspace (the Hemlock family and all baselines),
//! plus an RW conformance pass over every `rw.*` catalog entry — the
//! write path must be a full mutual-exclusion lock, readers must coexist
//! with each other but never with a writer, and a property-tested
//! reader/writer schedule must lose no updates.

use hemlock_core::hemlock::{
    Hemlock, HemlockAh, HemlockChain, HemlockNaive, HemlockOverlap, HemlockParking, HemlockV1,
    HemlockV2,
};
use hemlock_core::raw::{RawLock, RawRwLock};
use hemlock_core::Mutex;
use hemlock_locks::{AndersonLock, ClhLock, McsLock, TasLock, TicketLock, TtasLock};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn counter_torture<L: RawLock + 'static>(threads: usize, iters: u64) {
    let m: Arc<Mutex<u64, L>> = Arc::new(Mutex::new(0));
    std::thread::scope(|s| {
        for _ in 0..threads {
            let m = Arc::clone(&m);
            s.spawn(move || {
                for _ in 0..iters {
                    *m.lock() += 1;
                }
            });
        }
    });
    assert_eq!(*m.lock(), threads as u64 * iters, "{}", L::META.name);
}

fn overlap_detector<L: RawLock + 'static>(threads: usize, iters: u64) {
    let l = Arc::new(L::default());
    let in_cs = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        for _ in 0..threads {
            let l = Arc::clone(&l);
            let in_cs = Arc::clone(&in_cs);
            s.spawn(move || {
                for _ in 0..iters {
                    l.lock();
                    assert!(
                        !in_cs.swap(true, Ordering::AcqRel),
                        "{} overlap",
                        L::META.name
                    );
                    std::hint::spin_loop();
                    in_cs.store(false, Ordering::Release);
                    // Safety: acquired above on this thread.
                    unsafe { l.unlock() };
                }
            });
        }
    });
}

macro_rules! exclusion_tests {
    ($($name:ident => $lock:ty),+ $(,)?) => {
        $(
            #[test]
            fn $name() {
                counter_torture::<$lock>(4, 20_000);
                overlap_detector::<$lock>(4, 10_000);
            }
        )+
    };
}

exclusion_tests! {
    hemlock_ctr => Hemlock,
    hemlock_naive => HemlockNaive,
    hemlock_overlap => HemlockOverlap,
    hemlock_ah => HemlockAh,
    hemlock_v1 => HemlockV1,
    hemlock_v2 => HemlockV2,
    hemlock_parking => HemlockParking,
    hemlock_chain => HemlockChain,
    mcs => McsLock,
    clh => ClhLock,
    ticket => TicketLock,
    tas => TasLock,
    ttas => TtasLock,
    anderson => AndersonLock,
}

/// RW conformance, statically dispatched: the write path passes the same
/// counter-torture and overlap-detector gauntlet as every exclusive lock,
/// readers coexist, writers exclude readers, and a proptest-driven
/// reader/writer schedule (arbitrary per-thread interleavings of
/// increments and read-read consistency probes) ends with exactly the
/// sequential sum — no lost updates, no torn reads.
mod rw_conformance {
    use super::*;
    use proptest::prelude::*;

    fn readers_coexist<L: RawRwLock + 'static>(key: &str) {
        let l = Arc::new(L::default());
        l.read_lock();
        let peer = {
            let l = Arc::clone(&l);
            std::thread::spawn(move || {
                l.read_lock(); // must not block behind the held read mode
                unsafe { l.read_unlock() };
            })
        };
        peer.join()
            .unwrap_or_else(|_| panic!("{key}: reader blocked reader"));
        unsafe { l.read_unlock() };
    }

    fn writer_excludes_readers<L: RawRwLock + 'static>(key: &str) {
        let l = Arc::new(L::default());
        let writer_in = Arc::new(AtomicBool::new(false));
        l.write_lock();
        writer_in.store(true, Ordering::Release);
        let reader = {
            let l = Arc::clone(&l);
            let writer_in = Arc::clone(&writer_in);
            let key = key.to_string();
            std::thread::spawn(move || {
                l.read_lock();
                assert!(
                    !writer_in.load(Ordering::Acquire),
                    "{key}: reader admitted during a write phase"
                );
                unsafe { l.read_unlock() };
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(5));
        writer_in.store(false, Ordering::Release);
        unsafe { l.write_unlock() };
        reader.join().unwrap();
    }

    /// Proptest oracle: per-thread schedules of `Write(delta)` /
    /// `Read` ops under one RW lock must sum exactly like the sequential
    /// schedule, and a reader must never observe the value changing while
    /// it holds the read mode.
    fn run_rw_schedule<L: RawRwLock + 'static>(ops: &[Vec<Option<i64>>]) -> i64 {
        let m: Mutex<i64, L> = Mutex::new(0);
        std::thread::scope(|s| {
            for thread_ops in ops {
                let m = &m;
                s.spawn(move || {
                    for op in thread_ops {
                        match op {
                            Some(delta) => *m.lock() += delta,
                            None => {
                                let g = m.read();
                                let a = *g;
                                std::hint::spin_loop();
                                assert_eq!(a, *g, "torn read under the read mode");
                            }
                        }
                    }
                });
            }
        });
        m.into_inner()
    }

    macro_rules! rw_conformance_tests {
        ($(($key:literal, $display:literal, [$($alias:literal),*], $ty:ty, $cap:ident)),+ $(,)?) => {
            $(rw_conformance_tests!(@one $key, $ty);)+

            #[test]
            fn write_path_counter_torture_and_overlap() {
                $(
                    super::counter_torture::<$ty>(4, 5_000);
                    super::overlap_detector::<$ty>(4, 2_000);
                )+
            }

            #[test]
            fn readers_coexist_for_every_rw_entry() {
                $(readers_coexist::<$ty>($key);)+
            }

            #[test]
            fn writer_excludes_readers_for_every_rw_entry() {
                $(writer_excludes_readers::<$ty>($key);)+
            }
        };
        (@one $key:literal, $ty:ty) => {};
    }
    hemlock_rw::for_each_rw_lock!(rw_conformance_tests);

    /// One schedule step: `Some(delta)` = write `+= delta`, `None` = a
    /// read-read consistency probe (the shim has no `option::of`, so the
    /// two arms are composed with `prop_oneof!` — reads drawn half the
    /// time).
    fn rw_op() -> impl Strategy<Value = Option<i64>> {
        prop_oneof![(-100i64..100).prop_map(Some), (0i64..1).prop_map(|_| None),]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// The native RW lock and representative adapters survive
        /// arbitrary reader/writer schedules without losing updates.
        #[test]
        fn rw_schedules_match_sequential_sum(ops in proptest::collection::vec(
            proptest::collection::vec(rw_op(), 0..48), 1..4)) {
            let expected: i64 = ops.iter().flatten().flatten().sum();
            prop_assert_eq!(
                run_rw_schedule::<hemlock_rw::HemlockRw>(&ops), expected);
            prop_assert_eq!(
                run_rw_schedule::<hemlock_rw::RwFromRaw<McsLock>>(&ops), expected);
            prop_assert_eq!(
                run_rw_schedule::<hemlock_rw::RwFromRaw<ClhLock>>(&ops), expected);
        }
    }
}

#[test]
fn mixed_lock_types_coexist() {
    // Different algorithms in one program, one thread touching all of them
    // (each family has its own thread-local Grant slot / node pools).
    let a: Mutex<u64, Hemlock> = Mutex::new(0);
    let b: Mutex<u64, McsLock> = Mutex::new(0);
    let c: Mutex<u64, ClhLock> = Mutex::new(0);
    let d: Mutex<u64, HemlockV1> = Mutex::new(0);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..5_000 {
                    let mut ga = a.lock();
                    let mut gb = b.lock();
                    let mut gc = c.lock();
                    let mut gd = d.lock();
                    *ga += 1;
                    *gb += 1;
                    *gc += 1;
                    *gd += 1;
                }
            });
        }
    });
    assert_eq!(*a.lock(), 20_000);
    assert_eq!(*b.lock(), 20_000);
    assert_eq!(*c.lock(), 20_000);
    assert_eq!(*d.lock(), 20_000);
}
