//! The Figure 8 substrate under every lock algorithm: same workload, same
//! answers, regardless of the central mutex implementation.

use hemlock_core::hemlock::{
    Hemlock, HemlockAh, HemlockChain, HemlockNaive, HemlockOverlap, HemlockParking, HemlockV1,
    HemlockV2,
};
use hemlock_core::raw::RawLock;
use hemlock_locks::{AndersonLock, ClhLock, McsLock, TasLock, TicketLock, TtasLock};
use hemlock_minikv::{fill_seq, key_for, read_random, value_for, Db, Options};
use std::sync::Arc;
use std::time::Duration;

fn workload<L: RawLock + 'static>() {
    let db: Arc<Db<L>> = Arc::new(Db::new(Options {
        memtable_bytes: 8 << 10,
        max_runs: 4,
        mem_shards: 8,
    }));
    fill_seq(&db, 2_000, 64);

    // Mixed concurrent traffic: readers + an overwriter + a deleter.
    std::thread::scope(|s| {
        for t in 0..2 {
            let db = Arc::clone(&db);
            s.spawn(move || {
                for i in 0..4_000u64 {
                    let k = (i * 13 + t * 7) % 2_000;
                    let _ = db.get(&key_for(k));
                }
            });
        }
        {
            let db = Arc::clone(&db);
            s.spawn(move || {
                for i in 0..1_000u64 {
                    db.put(&key_for(i), b"overwritten");
                }
            });
        }
        {
            let db = Arc::clone(&db);
            s.spawn(move || {
                for i in 1_500..1_750u64 {
                    db.delete(&key_for(i));
                }
            });
        }
    });

    // Quiesced correctness sweep.
    for i in 0..1_000u64 {
        assert_eq!(
            db.get(&key_for(i)),
            Some(b"overwritten".to_vec()),
            "{}",
            L::META.name
        );
    }
    for i in 1_000..1_500u64 {
        assert_eq!(
            db.get(&key_for(i)),
            Some(value_for(i, 64)),
            "{}",
            L::META.name
        );
    }
    for i in 1_500..1_750u64 {
        assert_eq!(db.get(&key_for(i)), None, "{}", L::META.name);
    }
    for i in 1_750..2_000u64 {
        assert_eq!(
            db.get(&key_for(i)),
            Some(value_for(i, 64)),
            "{}",
            L::META.name
        );
    }
}

macro_rules! kv_tests {
    ($($name:ident => $lock:ty),+ $(,)?) => {
        $(
            #[test]
            fn $name() {
                workload::<$lock>();
            }
        )+
    };
}

kv_tests! {
    kv_under_hemlock => Hemlock,
    kv_under_hemlock_naive => HemlockNaive,
    kv_under_hemlock_overlap => HemlockOverlap,
    kv_under_hemlock_ah => HemlockAh,
    kv_under_hemlock_v1 => HemlockV1,
    kv_under_hemlock_v2 => HemlockV2,
    kv_under_hemlock_parking => HemlockParking,
    kv_under_hemlock_chain => HemlockChain,
    kv_under_mcs => McsLock,
    kv_under_clh => ClhLock,
    kv_under_ticket => TicketLock,
    kv_under_tas => TasLock,
    kv_under_ttas => TtasLock,
    kv_under_anderson => AndersonLock,
}

#[test]
fn readrandom_throughput_is_comparable_across_locks() {
    // Not a performance assertion (2 vCPUs, CI noise) — just that every
    // lock sustains the benchmark and reports sane numbers.
    fn rate<L: RawLock>() -> f64 {
        let db: Db<L> = Db::new(Default::default());
        fill_seq(&db, 5_000, 64);
        read_random(&db, 2, 5_000, Duration::from_millis(100)).ops_per_sec()
    }
    let hemlock = rate::<Hemlock>();
    let mcs = rate::<McsLock>();
    let ticket = rate::<TicketLock>();
    for (name, r) in [("hemlock", hemlock), ("mcs", mcs), ("ticket", ticket)] {
        assert!(r > 1_000.0, "{name}: {r} ops/s is implausibly low");
    }
}
