//! Loopback integration tests for the `hemlock-net` stack: a real TCP
//! server on the in-tree `TaskPool`, driven end-to-end through the
//! public client API, under **every** `async.*` catalog lock.
//!
//! The shutdown accounting is the load-bearing assertion: the server's
//! `requests` counter is incremented only after a response batch is
//! flushed, so `shutdown().requests == responses the client received`
//! proves no request was dropped on the floor and no response was left
//! unflushed. The test returning at all proves no task leaked —
//! `shutdown` joins the acceptor thread and every per-connection task.

use hemlock_async::catalog::{self, AsyncCatalogEntry, AsyncLockVisitor};
use hemlock_core::raw::RawTryLock;
use hemlock_harness::executor::TaskPool;
use hemlock_harness::reactor::Reactor;
use hemlock_minikv::{AsyncKv, Db, Options};
use hemlock_net::{
    spawn_server_with, AsyncConn, Client, Op, Response, ServerHandle, ServerOptions,
};
use std::sync::Arc;

fn tiny_opts() -> Options {
    Options {
        memtable_bytes: 16 << 10,
        max_runs: 4,
        mem_shards: 4,
    }
}

/// Spawns a fresh server over a `Db<L>` for the given catalog entry.
struct Spawn<'a> {
    pool: &'a Arc<TaskPool>,
    opts: ServerOptions,
}

impl AsyncLockVisitor for Spawn<'_> {
    type Output = ServerHandle;
    fn visit<L: RawTryLock + 'static>(self, _entry: &'static AsyncCatalogEntry) -> ServerHandle {
        let kv: Arc<dyn AsyncKv> = Arc::new(Db::<L>::new(tiny_opts())).into_async_kv();
        spawn_server_with(self.pool, kv, "127.0.0.1:0".parse().unwrap(), self.opts)
            .expect("bind loopback")
    }
}

/// Sequential + pipelined round-trips; returns the number of responses
/// the client actually received (== requests it sent, if nothing was
/// lost).
fn drive(addr: std::net::SocketAddr, lock: &str) -> u64 {
    let mut c = Client::connect(addr).expect("connect");
    let mut responses = 0u64;

    // Sequential round-trips through each verb.
    c.ping().unwrap();
    responses += 1;
    assert_eq!(c.get(b"alpha").unwrap(), None, "{lock}: miss before put");
    responses += 1;
    c.put(b"alpha", b"one").unwrap();
    responses += 1;
    assert_eq!(
        c.get(b"alpha").unwrap(),
        Some(b"one".to_vec()),
        "{lock}: hit after put"
    );
    responses += 1;
    c.delete(b"alpha").unwrap();
    responses += 1;
    assert_eq!(c.get(b"alpha").unwrap(), None, "{lock}: miss after delete");
    responses += 1;

    // One pipelined batch mixing all verbs; responses must come back in
    // op order (matched by request id, not wire order).
    let ops = [
        Op::Put(b"k0", b"v0"),
        Op::Put(b"k1", b"v1"),
        Op::Get(b"k0"),
        Op::Delete(b"k0"),
        Op::Get(b"k0"),
        Op::Get(b"k1"),
        Op::Ping,
    ];
    let rs = c.pipeline(&ops).unwrap();
    responses += rs.len() as u64;
    assert!(matches!(rs[0], Response::Ok { .. }), "{lock}");
    assert!(matches!(rs[1], Response::Ok { .. }), "{lock}");
    assert!(
        matches!(&rs[2], Response::Value { value, .. } if value == b"v0"),
        "{lock}: pipelined get sees earlier pipelined put"
    );
    assert!(matches!(rs[3], Response::Ok { .. }), "{lock}");
    assert!(
        matches!(rs[4], Response::NotFound { .. }),
        "{lock}: pipelined get sees earlier pipelined delete"
    );
    assert!(
        matches!(&rs[5], Response::Value { value, .. } if value == b"v1"),
        "{lock}"
    );
    assert!(matches!(rs[6], Response::Pong { .. }), "{lock}");

    responses
}

/// GET/PUT/DELETE/PING round-trips + graceful shutdown accounting under
/// every abortable lock in the `async.*` catalog — in **both** dispatch
/// modes, so the combined (batched) server path proves itself
/// observably identical to the per-op baseline on every lock.
#[test]
fn round_trips_and_graceful_shutdown_under_every_async_lock() {
    let pool = Arc::new(TaskPool::new(2));
    for combine in [true, false] {
        let opts = ServerOptions { combine };
        for key in catalog::keys() {
            let server = catalog::with_async_lock_type(key, Spawn { pool: &pool, opts })
                .expect("catalog key dispatches");
            let responses = drive(server.local_addr(), key);
            let stats = server.shutdown();
            assert_eq!(
                stats.connections, 1,
                "{key} combine={combine}: one client connected"
            );
            assert_eq!(
                stats.requests, responses,
                "{key} combine={combine}: every request the client saw answered must be counted served"
            );
        }
    }
}

/// The acceptance-criterion scale point, kept cheap enough for tier-1:
/// 64 concurrent pipelined connections against one server, all served
/// by the fixed-size `TaskPool`, with the same no-request-lost shutdown
/// accounting.
#[test]
fn sixty_four_pipelined_connections_survive_shutdown_accounting() {
    const CONNS: usize = 64;
    const BATCHES: usize = 4;
    const PIPELINE: usize = 8;

    let server_pool = Arc::new(TaskPool::new(4));
    let server = catalog::with_async_lock_type(
        "async.hemlock",
        Spawn {
            pool: &server_pool,
            opts: ServerOptions::default(),
        },
    )
    .expect("async.hemlock is in the catalog");
    let addr = server.local_addr();

    // Drive the clients from their own pool so 64 connections need only
    // a handful of OS threads; `AsyncConn` multiplexes via the reactor.
    let client_pool = Arc::new(TaskPool::new(4));
    let reactor = Arc::new(Reactor::new());
    let handles: Vec<_> = (0..CONNS)
        .map(|i| {
            let reactor = Arc::clone(&reactor);
            client_pool.spawn(async move {
                let mut conn = AsyncConn::connect(addr).expect("connect");
                let mut got = 0u64;
                for b in 0..BATCHES {
                    // Even batches PUT these keys, odd batches GET them
                    // back — so the key must not encode the batch number.
                    let keys: Vec<Vec<u8>> = (0..PIPELINE)
                        .map(|j| format!("c{i:02}.k{j}").into_bytes())
                        .collect();
                    let ops: Vec<Op<'_>> = keys
                        .iter()
                        .map(|k| {
                            if b % 2 == 0 {
                                Op::Put(k, b"payload")
                            } else {
                                Op::Get(k)
                            }
                        })
                        .collect();
                    let rs = conn.batch(&reactor, &ops).await.expect("batch");
                    assert_eq!(rs.len(), PIPELINE);
                    for r in &rs {
                        match (b % 2 == 0, r) {
                            (true, Response::Ok { .. }) => {}
                            (false, Response::Value { value, .. }) => {
                                assert_eq!(value, b"payload")
                            }
                            (want_put, other) => {
                                panic!("conn {i} batch {b}: want_put={want_put}, got {other:?}")
                            }
                        }
                    }
                    got += rs.len() as u64;
                }
                got
            })
        })
        .collect();

    let total: u64 = handles.into_iter().map(|h| h.join()).sum();
    assert_eq!(total, (CONNS * BATCHES * PIPELINE) as u64);

    let stats = server.shutdown();
    assert_eq!(stats.connections, CONNS);
    assert_eq!(
        stats.requests, total,
        "graceful shutdown must account for every pipelined response the clients received"
    );
}
