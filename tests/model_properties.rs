//! Machine-checked Section 3 theorems across configurations, spanning
//! simlock + model.

use hemlock_model::{check_progress, explore, ExploreConfig};
use hemlock_simlock::algos::{ClhSim, HemlockFlavor, HemlockSim, McsSim, TicketSim};
use hemlock_simlock::{Action, LockAlgorithm, Program, World};

fn assert_clean<A: LockAlgorithm + Clone>(world: World<A>, label: &str) {
    let report = explore(
        world,
        ExploreConfig {
            max_states: 2_000_000,
            check_fere_local: true,
        },
    );
    assert!(report.clean(), "{label}: {:?}", report.violations);
    assert!(
        report.exhaustive,
        "{label}: state cap hit at {}",
        report.states
    );
    assert!(report.terminal_states >= 1, "{label}: no terminal state");
}

#[test]
fn hemlock_two_threads_with_cs_work() {
    for flavor in [HemlockFlavor::Ctr, HemlockFlavor::Naive] {
        let programs = vec![
            Program::lock_unlock(0, 2, 1, 2),
            Program::lock_unlock(0, 2, 1, 2),
        ];
        assert_clean(
            World::new(HemlockSim::new(2, 1, flavor), programs),
            "hemlock 2t cs-work",
        );
    }
}

#[test]
fn hemlock_three_threads_one_round() {
    for flavor in [HemlockFlavor::Ctr, HemlockFlavor::Naive] {
        let programs = vec![
            Program::lock_unlock(0, 0, 0, 1),
            Program::lock_unlock(0, 0, 0, 1),
            Program::lock_unlock(0, 0, 0, 1),
        ];
        assert_clean(
            World::new(HemlockSim::new(3, 1, flavor), programs),
            "hemlock 3t",
        );
    }
}

#[test]
fn hemlock_nested_two_locks_exhaustive() {
    // Both threads take L0 then L1 nested — the multi-lock regime where
    // fere-local (not purely local) spinning is the guarantee.
    let nested = Program::new(
        vec![
            Action::Acquire(0),
            Action::Acquire(1),
            Action::Release(1),
            Action::Release(0),
        ],
        1,
    );
    for flavor in [HemlockFlavor::Ctr, HemlockFlavor::Naive] {
        assert_clean(
            World::new(
                HemlockSim::new(2, 2, flavor),
                vec![nested.clone(), nested.clone()],
            ),
            "hemlock nested",
        );
    }
}

#[test]
fn hemlock_opposite_order_independent_locks() {
    // T0 uses L0 then L1; T1 uses L1 then L0 — sequentially, not nested
    // (no deadlock possible), exercising Grant reuse across locks.
    let p0 = Program::new(
        vec![
            Action::Acquire(0),
            Action::Release(0),
            Action::Acquire(1),
            Action::Release(1),
        ],
        1,
    );
    let p1 = Program::new(
        vec![
            Action::Acquire(1),
            Action::Release(1),
            Action::Acquire(0),
            Action::Release(0),
        ],
        1,
    );
    assert_clean(
        World::new(HemlockSim::new(2, 2, HemlockFlavor::Ctr), vec![p0, p1]),
        "hemlock opposite order",
    );
}

#[test]
fn baselines_with_cs_work() {
    let programs = || {
        vec![
            Program::lock_unlock(0, 2, 0, 2),
            Program::lock_unlock(0, 2, 0, 2),
        ]
    };
    assert_clean(World::new(TicketSim::new(2, 1), programs()), "ticket");
    assert_clean(World::new(McsSim::new(2, 1), programs()), "mcs");
    assert_clean(World::new(ClhSim::new(2, 1), programs()), "clh");
}

#[test]
fn lockout_freedom_under_fair_schedules() {
    // Theorem 6 (bounded form): termination under round-robin plus many
    // random fair schedules, for every algorithm.
    let mk_programs = || {
        vec![
            Program::lock_unlock(0, 1, 1, 10),
            Program::lock_unlock(0, 1, 1, 10),
            Program::lock_unlock(0, 1, 1, 10),
        ]
    };
    assert!(check_progress(
        || World::new(HemlockSim::new(3, 1, HemlockFlavor::Ctr), mk_programs()),
        25,
        3_000_000
    ));
    assert!(check_progress(
        || World::new(HemlockSim::new(3, 1, HemlockFlavor::Naive), mk_programs()),
        25,
        3_000_000
    ));
    assert!(check_progress(
        || World::new(McsSim::new(3, 1), mk_programs()),
        10,
        3_000_000
    ));
    assert!(check_progress(
        || World::new(ClhSim::new(3, 1), mk_programs()),
        10,
        3_000_000
    ));
    assert!(check_progress(
        || World::new(TicketSim::new(3, 1), mk_programs()),
        10,
        3_000_000
    ));
}

#[test]
fn multiwait_leader_configuration_is_safe() {
    // Leader takes L0..L2 ascending, releases descending; two waiters.
    let programs = vec![
        Program::multiwait_leader(2, 1),
        Program::lock_unlock(0, 0, 0, 1),
        Program::lock_unlock(1, 0, 0, 1),
    ];
    assert_clean(
        World::new(HemlockSim::new(3, 2, HemlockFlavor::Ctr), programs),
        "multiwait leader",
    );
}
