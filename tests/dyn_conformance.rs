//! Conformance suite for the dynamic layer: every entry in the unified
//! catalog must behave identically through `DynMutex` as its static
//! counterpart does through `Mutex<T, L>`, and its advertised [`LockMeta`]
//! must be truthful.
//!
//! Checks, per catalog entry:
//!
//! - **mutual exclusion** — concurrent increments and an overlap detector
//!   through the type-erased handle;
//! - **trylock semantics** — `meta.try_lock` entries must acquire when
//!   free, report `WouldBlock` when held, and really confer ownership;
//!   non-trylock algorithms (CLH, Anderson) must report `Unsupported`;
//! - **timeout semantics** — `meta.abortable` entries must return within
//!   the deadline bound, a timed-out waiter must never acquire the lock
//!   afterwards (no double grant), and the lock must stay acquirable;
//!   non-abortable algorithms must report `Unsupported` rather than a fake
//!   timeout. A proptest drives arbitrary mixes of blocking acquisitions,
//!   timed acquisitions, and aborts over every abortable key, checking the
//!   counter oracle and an overlap detector;
//! - **guard drop on panic** — unwinding out of a critical section must
//!   release the lock;
//! - **metadata fidelity** — the entry's meta equals the static type's
//!   `META` (via `for_each_lock!`), the `dyn` handle reports the same, and
//!   the declared body size matches the measured `size_of`.
//!
//! A parallel pass walks the **RW catalog** (`hemlock_rw::catalog`,
//! `rw.*` keys) through `DynRwMutex`: readers coexist, the writer excludes
//! readers and writers alike, no updates are lost under a mixed
//! reader/writer schedule, and every entry's metadata stays truthful
//! (rw bit set, body words = measured size, display name patched).

use hemlock_core::dynlock::TryLockError;
use hemlock_core::raw::RawLock;
use hemlock_core::{DynMutex, DynRwMutex};
use hemlock_locks::catalog::{self, CatalogEntry};
use hemlock_rw::catalog as rw_catalog;
use hemlock_rw::catalog::RwCatalogEntry;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

fn dyn_mutex_for(entry: &CatalogEntry) -> DynMutex<u64> {
    DynMutex::new((entry.make)(), 0)
}

#[test]
fn catalog_is_populated() {
    assert!(catalog::ENTRIES.len() >= 15);
}

#[test]
fn mutual_exclusion_through_dyn_mutex() {
    for entry in catalog::ENTRIES {
        let m = dyn_mutex_for(entry);
        let in_cs = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = &m;
                let in_cs = &in_cs;
                s.spawn(move || {
                    for _ in 0..1_000 {
                        let mut g = m.lock();
                        assert!(
                            !in_cs.swap(true, Ordering::AcqRel),
                            "{}: overlapping critical sections",
                            entry.key
                        );
                        *g += 1;
                        in_cs.store(false, Ordering::Release);
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4_000, "{}", entry.key);
    }
}

#[test]
fn trylock_semantics_match_the_advertised_capability() {
    for entry in catalog::ENTRIES {
        let m = dyn_mutex_for(entry);
        if entry.meta.try_lock {
            // Uncontended: must acquire and really confer ownership.
            {
                let mut g = m
                    .try_lock()
                    .unwrap_or_else(|e| panic!("{}: uncontended try_lock failed: {e}", entry.key));
                *g += 1;
            }
            // Held: must refuse without blocking.
            let g = m.lock();
            assert_eq!(
                m.try_lock().map(|_| ()).unwrap_err(),
                TryLockError::WouldBlock,
                "{}",
                entry.key
            );
            drop(g);
            // Released again: must succeed again.
            drop(m.try_lock().expect("released lock must be acquirable"));
        } else {
            assert_eq!(
                m.try_lock().map(|_| ()).unwrap_err(),
                TryLockError::Unsupported,
                "{}: non-trylock algorithm must report Unsupported",
                entry.key
            );
            // The blocking path must be unaffected.
            drop(m.lock());
        }
    }
}

#[test]
fn timeout_semantics_match_the_advertised_capability() {
    use std::time::{Duration, Instant};
    for entry in catalog::ENTRIES {
        let m = dyn_mutex_for(entry);
        if entry.meta.abortable {
            // Uncontended: the timed path must acquire and confer
            // ownership.
            {
                let mut g = m
                    .try_lock_for(Duration::from_millis(10))
                    .unwrap_or_else(|e| panic!("{}: free timed acquire failed: {e}", entry.key));
                *g += 1;
            }
            // Held: a timed waiter must return TimedOut within bound — it
            // waits at least the timeout and (generously) far less than
            // forever.
            let g = m.lock();
            let t0 = Instant::now();
            assert_eq!(
                m.try_lock_for(Duration::from_millis(20))
                    .map(|_| ())
                    .unwrap_err(),
                TryLockError::TimedOut,
                "{}",
                entry.key
            );
            let waited = t0.elapsed();
            assert!(
                waited >= Duration::from_millis(20),
                "{}: {waited:?}",
                entry.key
            );
            assert!(
                waited < Duration::from_secs(10),
                "{}: timed waiter failed to return within bound ({waited:?})",
                entry.key
            );
            drop(g);
            // Released again: the aborted attempt left the lock reusable
            // for both the timed and the blocking path.
            drop(
                m.try_lock_for(Duration::from_millis(10))
                    .expect("released lock must be timed-acquirable"),
            );
            drop(m.lock());
        } else {
            assert_eq!(
                m.try_lock_for(Duration::from_millis(5))
                    .map(|_| ())
                    .unwrap_err(),
                TryLockError::Unsupported,
                "{}: non-abortable algorithm must report Unsupported, not a fake timeout",
                entry.key
            );
            drop(m.lock());
        }
    }
}

#[test]
fn aborted_waiters_never_acquire_and_never_double_grant() {
    use std::time::Duration;
    // The no-double-grant property: a holder keeps the lock across many
    // timed waiters' aborts; when it finally releases, exactly one new
    // acquisition succeeds, and the aborted waiters' attempts can never
    // surface as ownership later.
    for entry in catalog::ENTRIES.iter().filter(|e| e.meta.abortable) {
        let m = dyn_mutex_for(entry);
        let g = m.lock();
        std::thread::scope(|s| {
            for _ in 0..3 {
                let m = &m;
                s.spawn(move || {
                    // Every attempt must abort: the holder never releases
                    // while these run.
                    assert_eq!(
                        m.try_lock_for(Duration::from_millis(15))
                            .map(|_| ())
                            .unwrap_err(),
                        TryLockError::TimedOut,
                        "{}",
                        entry.key
                    );
                });
            }
        });
        // All waiters aborted and returned. Release; the critical section
        // must be re-enterable exactly once at a time.
        drop(g);
        let g2 = m
            .try_lock_for(Duration::from_millis(10))
            .unwrap_or_else(|e| panic!("{}: lock unusable after aborts: {e}", entry.key));
        // While g2 is held, nothing an aborted waiter left behind may make
        // a second acquisition succeed.
        assert_eq!(
            m.try_lock().map(|_| ()).unwrap_err(),
            TryLockError::WouldBlock,
            "{}: double grant after aborts",
            entry.key
        );
        drop(g2);
    }
}

#[test]
fn guard_drop_releases_on_panic() {
    for entry in catalog::ENTRIES {
        let m = dyn_mutex_for(entry);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut g = m.lock();
            *g = 7;
            panic!("inside critical section");
        }));
        assert!(r.is_err());
        // The guard released during unwinding; the lock is usable.
        assert_eq!(*m.lock(), 7, "{}", entry.key);
    }
}

#[test]
fn dyn_handles_report_the_entry_meta() {
    for entry in catalog::ENTRIES {
        let lock = (entry.make)();
        assert_eq!(lock.meta(), entry.meta, "{}", entry.key);
        let m = dyn_mutex_for(entry);
        assert_eq!(m.meta(), entry.meta, "{}", entry.key);
    }
}

// ---------------------------------------------------------------- RW pass

fn dyn_rw_mutex_for(entry: &RwCatalogEntry) -> DynRwMutex<u64> {
    DynRwMutex::new((entry.make)(), 0)
}

#[test]
fn rw_catalog_mirrors_the_exclusive_catalog() {
    assert_eq!(rw_catalog::ENTRIES.len(), catalog::ENTRIES.len());
    for entry in catalog::ENTRIES {
        let rw_key = format!("rw.{}", entry.key);
        let rw = rw_catalog::find(&rw_key)
            .unwrap_or_else(|| panic!("no RW counterpart for {}", entry.key));
        assert!(rw.meta.rw, "{rw_key}");
    }
}

#[test]
fn readers_coexist_through_dyn_rw_mutex() {
    for entry in rw_catalog::ENTRIES {
        let m = dyn_rw_mutex_for(entry);
        *m.write() = 9;
        let held = m.read();
        // A second reader on another thread must be admitted while the
        // main thread's guard is still alive — completion proves sharing.
        std::thread::scope(|s| {
            for _ in 0..2 {
                let m = &m;
                s.spawn(move || {
                    assert_eq!(*m.read(), 9, "{}", entry.key);
                });
            }
        });
        assert_eq!(*held, 9, "{}", entry.key);
    }
}

#[test]
fn writer_excludes_all_through_dyn_rw_mutex() {
    for entry in rw_catalog::ENTRIES {
        let m = dyn_rw_mutex_for(entry);
        let writer_in = AtomicBool::new(false);
        let started = AtomicUsize::new(0);
        let mut g = m.write();
        std::thread::scope(|s| {
            let spawn_probe = |as_reader: bool| {
                let m = &m;
                let writer_in = &writer_in;
                let started = &started;
                s.spawn(move || {
                    started.fetch_add(1, Ordering::AcqRel);
                    if as_reader {
                        let g = m.read();
                        assert!(!writer_in.load(Ordering::Acquire), "reader/writer overlap");
                        drop(g);
                    } else {
                        let g = m.write();
                        assert!(!writer_in.load(Ordering::Acquire), "writer/writer overlap");
                        drop(g);
                    }
                });
            };
            spawn_probe(true);
            spawn_probe(false);
            while started.load(Ordering::Acquire) < 2 {
                std::hint::spin_loop();
            }
            // Both probes are launched and must now be blocked on us.
            writer_in.store(true, Ordering::Release);
            std::thread::sleep(std::time::Duration::from_millis(5));
            *g = 1;
            writer_in.store(false, Ordering::Release);
            drop(g);
        });
        assert_eq!(*m.read(), 1, "{}", entry.key);
    }
}

#[test]
fn no_lost_updates_under_mixed_rw_traffic() {
    for entry in rw_catalog::ENTRIES {
        let m = dyn_rw_mutex_for(entry);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let m = &m;
                s.spawn(move || {
                    for _ in 0..1_000 {
                        *m.write() += 1;
                    }
                });
            }
            for _ in 0..2 {
                let m = &m;
                s.spawn(move || {
                    for _ in 0..1_000 {
                        let g = m.read();
                        let a = *g;
                        std::hint::spin_loop();
                        assert_eq!(a, *g, "{}: value moved under a read hold", entry.key);
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 2_000, "{}", entry.key);
    }
}

#[test]
fn rw_read_guard_and_write_guard_release_on_panic() {
    for entry in rw_catalog::ENTRIES {
        let m = dyn_rw_mutex_for(entry);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut g = m.write();
            *g = 7;
            panic!("inside write critical section");
        }));
        assert!(r.is_err());
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let g = m.read();
            assert_eq!(*g, 7, "{}", entry.key);
            panic!("inside read critical section");
        }));
        assert!(r.is_err());
        // Both guards released during unwinding: a writer gets in again.
        *m.write() += 1;
        assert_eq!(*m.read(), 8, "{}", entry.key);
    }
}

#[test]
fn rw_timed_semantics_match_the_advertised_capability() {
    use std::time::Duration;
    for entry in rw_catalog::ENTRIES {
        let m = dyn_rw_mutex_for(entry);
        if entry.meta.abortable {
            // Free: both timed modes acquire.
            *m.try_write_for(Duration::from_millis(10))
                .unwrap_or_else(|e| panic!("{}: free timed write failed: {e}", entry.key)) = 3;
            {
                // Timed readers coexist with a blocking reader.
                let held = m.read();
                let r = m
                    .try_read_for(Duration::from_millis(20))
                    .unwrap_or_else(|e| panic!("{}: timed reader not admitted: {e}", entry.key));
                assert_eq!((*held, *r), (3, 3), "{}", entry.key);
                // A timed writer must give up behind the readers…
                assert_eq!(
                    m.try_write_for(Duration::from_millis(15))
                        .map(|_| ())
                        .unwrap_err(),
                    TryLockError::TimedOut,
                    "{}",
                    entry.key
                );
            }
            // …and its abort must leave the lock fully usable: writer in,
            // then a timed reader times out behind it, then both recover.
            let w = m
                .try_write_for(Duration::from_millis(20))
                .expect("free after aborts");
            assert_eq!(
                m.try_read_for(Duration::from_millis(10))
                    .map(|_| ())
                    .unwrap_err(),
                TryLockError::TimedOut,
                "{}",
                entry.key
            );
            drop(w);
            assert_eq!(*m.try_read_for(Duration::from_millis(10)).expect("free"), 3);
        } else {
            assert_eq!(
                m.try_read_for(Duration::from_millis(5))
                    .map(|_| ())
                    .unwrap_err(),
                TryLockError::Unsupported,
                "{}",
                entry.key
            );
            assert_eq!(
                m.try_write_for(Duration::from_millis(5))
                    .map(|_| ())
                    .unwrap_err(),
                TryLockError::Unsupported,
                "{}",
                entry.key
            );
            // The blocking paths are unaffected.
            *m.write() += 1;
            drop(m.read());
        }
    }
}

#[test]
fn dyn_rw_handles_report_the_entry_meta() {
    for entry in rw_catalog::ENTRIES {
        let lock = (entry.make)();
        assert_eq!(lock.meta(), entry.meta, "{}", entry.key);
        let m = dyn_rw_mutex_for(entry);
        assert_eq!(m.meta(), entry.meta, "{}", entry.key);
        assert!(m.meta().rw, "{}", entry.key);
    }
}

macro_rules! rw_static_meta_checks {
    ($(($key:literal, $display:literal, [$($alias:literal),*], $ty:ty, $cap:ident)),+ $(,)?) => {
        /// The RW catalog's meta is the static type's `META` with the
        /// display name patched, and the declared body size is measured.
        #[test]
        fn rw_catalog_meta_matches_static_counterparts() {
            $(
                let entry = rw_catalog::find($key)
                    .unwrap_or_else(|| panic!("rw catalog lost key {}", $key));
                let mut expected = <$ty as RawLock>::META;
                expected.name = $display;
                assert_eq!(entry.meta, expected, "{}", $key);
                assert_eq!(
                    entry.meta.lock_words,
                    core::mem::size_of::<$ty>().div_ceil(core::mem::size_of::<usize>()),
                    "{}: LockMeta.lock_words disagrees with size_of",
                    $key
                );
                $(
                    assert_eq!(
                        rw_catalog::find($alias).map(|e| e.key),
                        Some($key),
                        "alias {} must resolve to {}", $alias, $key
                    );
                )*
            )+
        }
    };
}
hemlock_rw::for_each_rw_lock!(rw_static_meta_checks);

// ------------------------------------------------------- abort proptests

mod abort_mix {
    //! Proptest: arbitrary per-thread mixes of blocking acquisitions and
    //! timed acquisitions (many of which abort under contention) over
    //! **every abortable catalog key**. Invariants, per schedule:
    //!
    //! - the protected counter equals the number of acquisitions that
    //!   actually succeeded (aborted waiters never acquire — a timed-out
    //!   attempt that secretly took the lock would inflate the count, and
    //!   one that corrupted the queue would deadlock or tear it);
    //! - critical sections never overlap (mutual exclusion survives
    //!   aborts);
    //! - after the schedule the lock is still acquirable by both paths
    //!   (aborts leave the lock reusable).

    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[derive(Clone, Copy, Debug)]
    enum Op {
        /// Unconditional acquisition: always succeeds eventually.
        Block,
        /// Timed acquisition with a tiny budget (microseconds): under
        /// contention a large fraction abort, which is the point.
        Timed(u16),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // The vendored proptest shim has no `Just`; a 1-value range stands
        // in for the constant arm, as in tests/mutual_exclusion.rs.
        prop_oneof![
            (0u8..1).prop_map(|_| Op::Block),
            (1u16..200).prop_map(Op::Timed), // 1..200 us budgets
        ]
    }

    fn run_mix(entry: &'static CatalogEntry, ops: &[Vec<Op>]) {
        let m = dyn_mutex_for(entry);
        let in_cs = AtomicBool::new(false);
        let successes = AtomicU64::new(0);
        std::thread::scope(|s| {
            for thread_ops in ops {
                let m = &m;
                let in_cs = &in_cs;
                let successes = &successes;
                s.spawn(move || {
                    for &op in thread_ops {
                        let guard = match op {
                            Op::Block => Some(m.lock()),
                            Op::Timed(us) => {
                                match m.try_lock_for(Duration::from_micros(us as u64)) {
                                    Ok(g) => Some(g),
                                    Err(TryLockError::TimedOut) => None,
                                    Err(e) => panic!("{}: unexpected {e}", entry.key),
                                }
                            }
                        };
                        if let Some(mut g) = guard {
                            assert!(
                                !in_cs.swap(true, Ordering::AcqRel),
                                "{}: overlapping critical sections",
                                entry.key
                            );
                            *g += 1;
                            successes.fetch_add(1, Ordering::Relaxed);
                            in_cs.store(false, Ordering::Release);
                        }
                    }
                });
            }
        });
        // Oracle: every success incremented exactly once; aborted waiters
        // contributed nothing.
        assert_eq!(
            *m.lock(),
            successes.load(Ordering::Relaxed),
            "{}: counter diverged from successful acquisitions",
            entry.key
        );
        // The lock outlives the abort storm: both paths still acquire.
        drop(
            m.try_lock_for(Duration::from_millis(20))
                .expect("timed path reusable"),
        );
        drop(m.lock());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]
        #[test]
        fn acquire_abort_release_mixes_preserve_every_invariant(
            ops in proptest::collection::vec(
                proptest::collection::vec(op_strategy(), 0..24), 1..4)
        ) {
            for entry in catalog::ENTRIES.iter().filter(|e| e.meta.abortable) {
                run_mix(entry, &ops);
            }
        }
    }
}

// ---------------------------------------------------------- async pass

mod async_pass {
    //! Conformance for the **async catalog** (`hemlock_async::catalog`,
    //! `async.*` keys) through `DynAsyncMutex`: mutual exclusion under
    //! task contention, truthful metadata, and — the property the
    //! subsystem is built around — **cancellation is an abort**: a
    //! dropped pending lock future never acquires afterwards and leaves
    //! no queue state, while every surviving waiter still gets its wakeup.

    use super::*;
    use hemlock_async::catalog as async_catalog;
    use hemlock_async::catalog::AsyncCatalogEntry;
    use hemlock_async::DynAsyncMutex;
    use hemlock_harness::executor::{block_on, TaskPool};
    use proptest::prelude::*;
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;
    use std::task::{Context, Poll};

    fn dyn_async_mutex_for(entry: &AsyncCatalogEntry) -> DynAsyncMutex<u64> {
        DynAsyncMutex::new((entry.make)(), 0)
    }

    #[test]
    fn async_catalog_mirrors_the_abortable_subset() {
        let abortable = catalog::abortable();
        assert_eq!(async_catalog::ENTRIES.len(), abortable.len());
        for entry in &abortable {
            let key = format!("async.{}", entry.key);
            let a = async_catalog::find(&key)
                .unwrap_or_else(|| panic!("no async counterpart for {}", entry.key));
            assert_eq!(a.meta, entry.meta, "{key}");
            assert!(a.meta.asyncable, "{key}");
        }
        assert!(async_catalog::find("async.clh").is_none());
        assert!(async_catalog::find("async.anderson").is_none());
    }

    #[test]
    fn exclusive_catalog_asyncable_bit_is_truthful() {
        // asyncable == abortable everywhere, and exactly the asyncable
        // entries have an async.* key.
        for entry in catalog::ENTRIES {
            assert_eq!(entry.meta.asyncable, entry.meta.abortable, "{}", entry.key);
            assert_eq!(
                async_catalog::find(&format!("async.{}", entry.key)).is_some(),
                entry.meta.asyncable,
                "{}",
                entry.key
            );
        }
    }

    #[test]
    fn mutual_exclusion_through_dyn_async_mutex() {
        for entry in async_catalog::ENTRIES {
            let pool = TaskPool::new(3);
            let m = Arc::new(dyn_async_mutex_for(entry));
            let in_cs = Arc::new(AtomicBool::new(false));
            let handles: Vec<_> = (0..6)
                .map(|_| {
                    let m = Arc::clone(&m);
                    let in_cs = Arc::clone(&in_cs);
                    let key = entry.key;
                    pool.spawn(async move {
                        for _ in 0..300 {
                            let mut g = m.lock().await;
                            assert!(
                                !in_cs.swap(true, Ordering::AcqRel),
                                "{key}: overlapping critical sections"
                            );
                            *g += 1;
                            in_cs.store(false, Ordering::Release);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(block_on(async { *m.lock().await }), 1_800, "{}", entry.key);
            assert!(m.raw().is_idle(), "{}", entry.key);
        }
    }

    #[test]
    fn dyn_async_handles_report_the_entry_meta() {
        for entry in async_catalog::ENTRIES {
            let lock = (entry.make)();
            assert_eq!(lock.meta(), entry.meta, "{}", entry.key);
            let m = dyn_async_mutex_for(entry);
            assert_eq!(m.meta(), entry.meta, "{}", entry.key);
        }
    }

    #[test]
    fn cancelled_parked_futures_never_acquire_and_release_flows_on() {
        for entry in async_catalog::ENTRIES {
            let m = dyn_async_mutex_for(entry);
            let held = m.try_lock().expect("free");
            // Park three futures, then cancel the middle one.
            let noop = noop_waker();
            let mut cx = Context::from_waker(&noop);
            let mut f1 = Box::pin(m.lock());
            let mut f2 = Box::pin(m.lock());
            let mut f3 = Box::pin(m.lock());
            assert!(f1.as_mut().poll(&mut cx).is_pending());
            assert!(f2.as_mut().poll(&mut cx).is_pending());
            assert!(f3.as_mut().poll(&mut cx).is_pending());
            assert_eq!(m.waiters(), 3, "{}", entry.key);
            drop(f2);
            assert_eq!(m.waiters(), 2, "{}: cancel must unlink", entry.key);
            drop(held);
            // FIFO hand-off skips the cancelled node: f1 then f3.
            let g1 = match f1.as_mut().poll(&mut cx) {
                Poll::Ready(g) => g,
                Poll::Pending => panic!("{}: head waiter not granted", entry.key),
            };
            assert!(f3.as_mut().poll(&mut cx).is_pending(), "{}", entry.key);
            drop(g1);
            let g3 = match f3.as_mut().poll(&mut cx) {
                Poll::Ready(g) => g,
                Poll::Pending => panic!("{}: next waiter not granted", entry.key),
            };
            // Nothing the cancelled future left behind may double-grant.
            assert!(m.try_lock().is_none(), "{}: double grant", entry.key);
            drop(g3);
            assert!(m.raw().is_idle(), "{}", entry.key);
        }
    }

    fn noop_waker() -> std::task::Waker {
        struct Noop;
        impl std::task::Wake for Noop {
            fn wake(self: Arc<Self>) {}
        }
        std::task::Waker::from(Arc::new(Noop))
    }

    /// Polls the wrapped acquisition once; if it parks, **drops it on the
    /// spot** — a cancellation of a genuinely-parked future, the racy
    /// moment the abort contract must survive.
    struct CancelIfParked<F>(Option<Pin<Box<F>>>);

    impl<F: Future> Future for CancelIfParked<F> {
        type Output = Option<F::Output>;
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut inner = self.0.take().expect("polled after completion");
            match inner.as_mut().poll(cx) {
                Poll::Ready(out) => Poll::Ready(Some(out)),
                Poll::Pending => {
                    drop(inner); // cancel the parked acquisition
                    Poll::Ready(None)
                }
            }
        }
    }

    fn run_cancel_mix(entry: &'static AsyncCatalogEntry, ops: &[Vec<bool>]) {
        let pool = TaskPool::new(3);
        let m = Arc::new(dyn_async_mutex_for(entry));
        let in_cs = Arc::new(AtomicBool::new(false));
        let successes = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = ops
            .iter()
            .map(|task_ops| {
                let m = Arc::clone(&m);
                let in_cs = Arc::clone(&in_cs);
                let successes = Arc::clone(&successes);
                let task_ops = task_ops.clone();
                let key = entry.key;
                pool.spawn(async move {
                    for cancel_style in task_ops {
                        let guard = if cancel_style {
                            // Acquire-or-cancel: parks under contention and
                            // is immediately dropped — the abort path.
                            CancelIfParked(Some(Box::pin(m.lock()))).await
                        } else {
                            Some(m.lock().await)
                        };
                        if let Some(mut g) = guard {
                            assert!(
                                !in_cs.swap(true, Ordering::AcqRel),
                                "{key}: overlapping critical sections"
                            );
                            *g += 1;
                            successes.fetch_add(1, Ordering::Relaxed);
                            in_cs.store(false, Ordering::Release);
                        }
                    }
                })
            })
            .collect();
        // Every task completing — none stranded on a wait that a
        // cancellation should have unblocked — IS the no-lost-wakeup
        // check: a leaked queue head would hang a `lock().await` forever.
        for h in handles {
            h.join();
        }
        // Oracle: aborted attempts contributed nothing.
        assert_eq!(
            block_on(async { *m.lock().await }),
            successes.load(Ordering::Relaxed),
            "{}: counter diverged from successful acquisitions",
            entry.key
        );
        // No queue state left behind, and the lock is fully reusable.
        assert_eq!(m.waiters(), 0, "{}", entry.key);
        assert!(m.raw().is_idle(), "{}", entry.key);
        let g = m.try_lock().expect("reusable after the abort storm");
        assert!(m.try_lock().is_none(), "{}: double grant", entry.key);
        drop(g);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        #[test]
        fn random_future_drops_preserve_every_invariant(
            ops in proptest::collection::vec(
                proptest::collection::vec(proptest::any::<bool>(), 0..24), 1..5)
        ) {
            for entry in async_catalog::ENTRIES {
                run_cancel_mix(entry, &ops);
            }
        }
    }
}

macro_rules! static_meta_checks {
    ($(($key:literal, [$($alias:literal),*], $ty:ty, $cap:ident)),+ $(,)?) => {
        /// The catalog's meta is byte-for-byte the static type's `META`,
        /// and the declared body size is the measured body size.
        #[test]
        fn catalog_meta_matches_static_counterparts() {
            $(
                let entry = catalog::find($key)
                    .unwrap_or_else(|| panic!("catalog lost key {}", $key));
                assert_eq!(entry.meta, <$ty as RawLock>::META, "{}", $key);
                // Declared body words = measured size, rounded up to whole
                // words (TAS/TTAS bodies are a single byte).
                assert_eq!(
                    entry.meta.lock_words,
                    core::mem::size_of::<$ty>().div_ceil(core::mem::size_of::<usize>()),
                    "{}: LockMeta.lock_words disagrees with size_of",
                    $key
                );
                $(
                    assert_eq!(
                        catalog::find($alias).map(|e| e.key),
                        Some($key),
                        "alias {} must resolve to {}", $alias, $key
                    );
                )*
            )+
        }
    };
}
hemlock_locks::for_each_lock!(static_meta_checks);
