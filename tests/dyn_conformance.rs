//! Conformance suite for the dynamic layer: every entry in the unified
//! catalog must behave identically through `DynMutex` as its static
//! counterpart does through `Mutex<T, L>`, and its advertised [`LockMeta`]
//! must be truthful.
//!
//! Checks, per catalog entry:
//!
//! - **mutual exclusion** — concurrent increments and an overlap detector
//!   through the type-erased handle;
//! - **trylock semantics** — `meta.try_lock` entries must acquire when
//!   free, report `WouldBlock` when held, and really confer ownership;
//!   non-trylock algorithms (CLH, Ticket, Anderson) must report
//!   `Unsupported`;
//! - **guard drop on panic** — unwinding out of a critical section must
//!   release the lock;
//! - **metadata fidelity** — the entry's meta equals the static type's
//!   `META` (via `for_each_lock!`), the `dyn` handle reports the same, and
//!   the declared body size matches the measured `size_of`.

use hemlock_core::dynlock::TryLockError;
use hemlock_core::raw::RawLock;
use hemlock_core::DynMutex;
use hemlock_locks::catalog::{self, CatalogEntry};
use std::sync::atomic::{AtomicBool, Ordering};

fn dyn_mutex_for(entry: &CatalogEntry) -> DynMutex<u64> {
    DynMutex::new((entry.make)(), 0)
}

#[test]
fn catalog_is_populated() {
    assert!(catalog::ENTRIES.len() >= 15);
}

#[test]
fn mutual_exclusion_through_dyn_mutex() {
    for entry in catalog::ENTRIES {
        let m = dyn_mutex_for(entry);
        let in_cs = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = &m;
                let in_cs = &in_cs;
                s.spawn(move || {
                    for _ in 0..1_000 {
                        let mut g = m.lock();
                        assert!(
                            !in_cs.swap(true, Ordering::AcqRel),
                            "{}: overlapping critical sections",
                            entry.key
                        );
                        *g += 1;
                        in_cs.store(false, Ordering::Release);
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4_000, "{}", entry.key);
    }
}

#[test]
fn trylock_semantics_match_the_advertised_capability() {
    for entry in catalog::ENTRIES {
        let m = dyn_mutex_for(entry);
        if entry.meta.try_lock {
            // Uncontended: must acquire and really confer ownership.
            {
                let mut g = m
                    .try_lock()
                    .unwrap_or_else(|e| panic!("{}: uncontended try_lock failed: {e}", entry.key));
                *g += 1;
            }
            // Held: must refuse without blocking.
            let g = m.lock();
            assert_eq!(
                m.try_lock().map(|_| ()).unwrap_err(),
                TryLockError::WouldBlock,
                "{}",
                entry.key
            );
            drop(g);
            // Released again: must succeed again.
            drop(m.try_lock().expect("released lock must be acquirable"));
        } else {
            assert_eq!(
                m.try_lock().map(|_| ()).unwrap_err(),
                TryLockError::Unsupported,
                "{}: non-trylock algorithm must report Unsupported",
                entry.key
            );
            // The blocking path must be unaffected.
            drop(m.lock());
        }
    }
}

#[test]
fn guard_drop_releases_on_panic() {
    for entry in catalog::ENTRIES {
        let m = dyn_mutex_for(entry);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut g = m.lock();
            *g = 7;
            panic!("inside critical section");
        }));
        assert!(r.is_err());
        // The guard released during unwinding; the lock is usable.
        assert_eq!(*m.lock(), 7, "{}", entry.key);
    }
}

#[test]
fn dyn_handles_report_the_entry_meta() {
    for entry in catalog::ENTRIES {
        let lock = (entry.make)();
        assert_eq!(lock.meta(), entry.meta, "{}", entry.key);
        let m = dyn_mutex_for(entry);
        assert_eq!(m.meta(), entry.meta, "{}", entry.key);
    }
}

macro_rules! static_meta_checks {
    ($(($key:literal, [$($alias:literal),*], $ty:ty, $cap:ident)),+ $(,)?) => {
        /// The catalog's meta is byte-for-byte the static type's `META`,
        /// and the declared body size is the measured body size.
        #[test]
        fn catalog_meta_matches_static_counterparts() {
            $(
                let entry = catalog::find($key)
                    .unwrap_or_else(|| panic!("catalog lost key {}", $key));
                assert_eq!(entry.meta, <$ty as RawLock>::META, "{}", $key);
                // Declared body words = measured size, rounded up to whole
                // words (TAS/TTAS bodies are a single byte).
                assert_eq!(
                    entry.meta.lock_words,
                    core::mem::size_of::<$ty>().div_ceil(core::mem::size_of::<usize>()),
                    "{}: LockMeta.lock_words disagrees with size_of",
                    $key
                );
                $(
                    assert_eq!(
                        catalog::find($alias).map(|e| e.key),
                        Some($key),
                        "alias {} must resolve to {}", $alias, $key
                    );
                )*
            )+
        }
    };
}
hemlock_locks::for_each_lock!(static_meta_checks);
