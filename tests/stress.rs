//! Randomized multi-lock stress across the Hemlock family: arbitrary
//! acquisition subsets, arbitrary release orders, try_lock mixed in —
//! the pthread usage envelope the paper requires (§4: locks "allow
//! multiple locks to be held simultaneously and released in arbitrary
//! order").

use hemlock_core::hemlock::{
    Hemlock, HemlockAh, HemlockNaive, HemlockOverlap, HemlockV1, HemlockV2,
};
use hemlock_core::raw::{RawLock, RawTryLock};
use std::cell::UnsafeCell;
use std::sync::Arc;

const LOCKS: usize = 6;
const THREADS: usize = 4;
const ITERS: u64 = 4_000;

struct Cells {
    locks: Vec<LockSlot>,
}
struct LockSlot {
    value: UnsafeCell<u64>,
}
unsafe impl Sync for Cells {}

fn stress<L: RawLock + RawTryLock + 'static>() {
    let locks: Arc<Vec<L>> = Arc::new((0..LOCKS).map(|_| L::default()).collect());
    let cells = Arc::new(Cells {
        locks: (0..LOCKS)
            .map(|_| LockSlot {
                value: UnsafeCell::new(0),
            })
            .collect(),
    });

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let locks = Arc::clone(&locks);
            let cells = Arc::clone(&cells);
            s.spawn(move || {
                let mut state = (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                let mut rng = move || {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    state >> 11
                };
                for _ in 0..ITERS {
                    let r = rng();
                    // Pick an ordered subset of 1..=3 locks (ascending to
                    // avoid deadlock), acquire them, bump each protected
                    // counter, release in a pseudo-random order.
                    let count = 1 + (r % 3) as usize;
                    let mut picked = Vec::with_capacity(count);
                    let mut idx = (r >> 8) as usize % LOCKS;
                    for _ in 0..count {
                        if picked.last().is_none_or(|&p| p < idx) {
                            picked.push(idx);
                        }
                        idx = (idx + 1 + (r >> 16) as usize % 2).min(LOCKS - 1);
                    }
                    picked.dedup();
                    for &i in &picked {
                        if r & 1 == 0 {
                            locks[i].lock();
                        } else {
                            // Mix try_lock into the protocol.
                            if !locks[i].try_lock() {
                                locks[i].lock();
                            }
                        }
                    }
                    for &i in &picked {
                        // Safety: lock i is held.
                        unsafe { *cells.locks[i].value.get() += 1 };
                    }
                    // Release order: forward on even, reverse on odd.
                    if r & 2 == 0 {
                        for &i in &picked {
                            // Safety: acquired above on this thread.
                            unsafe { locks[i].unlock() };
                        }
                    } else {
                        for &i in picked.iter().rev() {
                            // Safety: acquired above on this thread.
                            unsafe { locks[i].unlock() };
                        }
                    }
                }
            });
        }
    });

    let total: u64 = (0..LOCKS)
        .map(|i| unsafe { *cells.locks[i].value.get() })
        .sum();
    assert!(total > 0);
    // Each iteration bumps each picked lock once; totals must be internally
    // consistent (no lost updates): recompute with a single-threaded replay
    // is impossible (randomized), so the invariant is simply that every
    // increment was mutually excluded — guaranteed if no counter was torn.
    // The real check: no deadlock, no crash, and counters are plausible.
    assert!(total >= THREADS as u64 * ITERS, "{total}");
}

macro_rules! stress_tests {
    ($($name:ident => $lock:ty),+ $(,)?) => {
        $( #[test] fn $name() { stress::<$lock>(); } )+
    };
}

stress_tests! {
    stress_hemlock => Hemlock,
    stress_hemlock_naive => HemlockNaive,
    stress_hemlock_overlap => HemlockOverlap,
    stress_hemlock_ah => HemlockAh,
    stress_hemlock_v1 => HemlockV1,
    stress_hemlock_v2 => HemlockV2,
}

#[test]
fn grant_slots_recycle_across_thread_generations() {
    // Spawn several generations of threads; the Grant arena must recycle
    // slots rather than leak one per thread ever created.
    for _gen in 0..5 {
        let lock = Arc::new(Hemlock::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let lock = Arc::clone(&lock);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1_000 {
                    lock.lock();
                    // Safety: acquired above on this thread.
                    unsafe { lock.unlock() };
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
    // No API exposes the CTR family arena size publicly here, but the
    // registry's own unit tests assert recycling; this test's job is the
    // end-to-end generational churn without hangs or leaks under ASAN-ish
    // scrutiny.
}
