//! Markdown link check for the human-facing docs: every **relative** link
//! in `README.md` and `docs/*.md` must point at a file that exists in the
//! repository. External (`http(s)://`, `mailto:`) links and pure
//! `#fragment` anchors are out of scope — this guards against the common
//! failure of renaming or moving a file and stranding the docs that point
//! at it. The CI `docs` job runs exactly this test as its link-check step.

use std::path::{Path, PathBuf};

/// Extracts `](target)` link targets from one markdown document,
/// ignoring fenced code blocks (```…```), where `](…)` is usually Rust.
fn link_targets(markdown: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find("](") {
            rest = &rest[open + 2..];
            let Some(close) = rest.find(')') else { break };
            out.push(rest[..close].to_string());
            rest = &rest[close + 1..];
        }
    }
    out
}

fn check_doc(repo_root: &Path, doc: &Path, failures: &mut Vec<String>) {
    let text = std::fs::read_to_string(doc)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", doc.display()));
    for target in link_targets(&text) {
        // External links and in-page anchors are not this test's job.
        if target.starts_with("http://")
            || target.starts_with("https://")
            || target.starts_with("mailto:")
            || target.starts_with('#')
        {
            continue;
        }
        // Strip a trailing fragment/query from relative links.
        let path_part = target
            .split(['#', '?'])
            .next()
            .expect("split yields at least one element");
        if path_part.is_empty() {
            continue;
        }
        // Relative links resolve against the linking document's directory.
        let base = doc.parent().unwrap_or(repo_root);
        let resolved = base.join(path_part);
        if !resolved.exists() {
            failures.push(format!(
                "{}: broken relative link `{}` (resolved to {})",
                doc.strip_prefix(repo_root).unwrap_or(doc).display(),
                target,
                resolved.display(),
            ));
        }
    }
}

#[test]
fn readme_and_docs_have_no_broken_relative_links() {
    let repo_root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut docs = vec![repo_root.join("README.md")];
    let docs_dir = repo_root.join("docs");
    if let Ok(entries) = std::fs::read_dir(&docs_dir) {
        for entry in entries.flatten() {
            let p = entry.path();
            if p.extension().is_some_and(|e| e == "md") {
                docs.push(p);
            }
        }
    }
    assert!(
        docs.len() >= 3,
        "expected README.md plus at least docs/ARCHITECTURE.md and docs/BENCH_FORMAT.md, found {docs:?}"
    );
    let mut failures = Vec::new();
    for doc in &docs {
        check_doc(&repo_root, doc, &mut failures);
    }
    assert!(
        failures.is_empty(),
        "broken links:\n{}",
        failures.join("\n")
    );
}

#[test]
fn link_extractor_understands_the_markdown_we_write() {
    let md = "see [a](docs/A.md) and [b](https://x.y) and [c](other.md#frag)\n\
              ```rust\nlet x = a[0](1); // not a link\n```\n\
              [anchor](#local) [d](sub/d.md?q=1)";
    let targets = link_targets(md);
    assert_eq!(
        targets,
        vec![
            "docs/A.md",
            "https://x.y",
            "other.md#frag",
            "#local",
            "sub/d.md?q=1"
        ]
    );
}
