//! §5.4-style censuses with the instrumented Hemlock, run as ONE test so
//! the family-global counters are not perturbed by parallel test threads.

use hemlock_core::hemlock::HemlockInstrumented;
use hemlock_core::raw::RawLock;
use hemlock_obs::census;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn censuses_match_scenarios() {
    // The censuses live in hemlock-obs now: plug its sink into the core
    // event seam, then read the same report back through the registry.
    census::install();

    // --- Scenario 1: single-lock workload => purely local spinning. ---
    census::reset();
    {
        let l = Arc::new(HemlockInstrumented::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = Arc::clone(&l);
                s.spawn(move || {
                    for _ in 0..5_000 {
                        l.lock();
                        // Safety: acquired above on this thread.
                        unsafe { l.unlock() };
                    }
                });
            }
        });
    }
    let r = census::report();
    assert_eq!(r.acquires, 20_000);
    assert_eq!(r.lock_while_holding, 0, "one lock at a time");
    assert_eq!(r.max_locks_held, 1);
    assert!(
        r.max_grant_waiters <= 1,
        "single-lock workloads spin locally (got {})",
        r.max_grant_waiters
    );
    assert!(r.contended_acquires <= r.acquires);

    // --- Scenario 2: the Figure 1 junction, with real threads. ---
    // Thread E holds 3 locks; one waiter per lock; all three waiters spin
    // on E's single Grant word; releases must wake exactly the right one.
    census::reset();
    {
        let locks: Arc<Vec<HemlockInstrumented>> =
            Arc::new((0..3).map(|_| HemlockInstrumented::new()).collect());
        let woken = Arc::new(AtomicUsize::new(0));
        for l in locks.iter() {
            l.lock();
        }
        let mut handles = Vec::new();
        for i in 0..3 {
            let before = locks[i].tail_word();
            let (locks2, woken2) = (Arc::clone(&locks), Arc::clone(&woken));
            handles.push(std::thread::spawn(move || {
                locks2[i].lock();
                woken2.fetch_or(1 << i, Ordering::AcqRel);
                // Safety: acquired above on this thread.
                unsafe { locks2[i].unlock() };
            }));
            while locks[i].tail_word() == before {
                std::thread::yield_now();
            }
        }
        // Give the waiters time to all begin spinning on E's Grant word.
        std::thread::sleep(std::time::Duration::from_millis(30));
        let mid = census::report();
        assert_eq!(
            mid.max_grant_waiters, 3,
            "three waiters across three locks share E's Grant word"
        );
        // Release middle lock first: only waiter 1 may proceed.
        // Safety: all three acquired above on this thread.
        unsafe { locks[1].unlock() };
        handles.remove(1).join().unwrap();
        assert_eq!(woken.load(Ordering::Acquire), 0b010);
        unsafe { locks[2].unlock() };
        unsafe { locks[0].unlock() };
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(woken.load(Ordering::Acquire), 0b111);
    }
    let r = census::report();
    assert_eq!(r.max_locks_held, 3);
    assert!(r.lock_while_holding >= 2, "E locked while holding");

    // --- Scenario 3: try_lock counts as an acquire, never contends. ---
    census::reset();
    {
        use hemlock_core::raw::RawTryLock;
        let l = HemlockInstrumented::new();
        assert!(l.try_lock());
        assert!(!l.try_lock());
        // Safety: try_lock succeeded above on this thread.
        unsafe { l.unlock() };
    }
    let r = census::report();
    assert_eq!(r.acquires, 1);
    assert_eq!(r.contended_acquires, 0);

    // --- Scenario 4: the Tail word reflects hold state. ---
    // (Folded into this single test: the counters are family-global, so
    // this file deliberately has exactly one #[test].)
    let l = HemlockInstrumented::new();
    assert_eq!(l.tail_word(), 0);
    l.lock();
    assert_ne!(l.tail_word(), 0);
    // Safety: acquired above on this thread.
    unsafe { l.unlock() };
    assert_eq!(l.tail_word(), 0);
}
