//! Stress/property suite for `hemlock-shard` across the whole catalog:
//! every lock algorithm must drive a `ShardedTable` correctly — concurrent
//! insert/read/remove with disjoint and overlapping keys, panic-safe shard
//! guards, a truthful acquisition census, and a sane shard-index
//! distribution. Static dispatch comes from `for_each_lock!`, so a lock
//! added to the catalog is automatically covered here.

use hemlock_core::raw::RawLock;
use hemlock_shard::ShardedTable;
use std::sync::atomic::{AtomicU64, Ordering};

/// Mixed concurrent workload under lock `L`: writers own disjoint key
/// ranges (every surviving write must be visible), plus all threads hammer
/// one shared hot key with blind increments tallied on the side.
fn stress<L: RawLock + 'static>(key: &str) {
    const THREADS: u64 = 4;
    const PER: u64 = 600;
    const HOT: u64 = u64::MAX; // hashes to some shard like any other key

    let table: ShardedTable<u64, u64, L> = ShardedTable::with_shards(8);
    table.insert(HOT, 0);
    let hot_adds = AtomicU64::new(0);

    std::thread::scope(|s| {
        for tid in 0..THREADS {
            let table = &table;
            let hot_adds = &hot_adds;
            s.spawn(move || {
                for i in 0..PER {
                    let k = tid * PER + i;
                    table.insert(k, k);
                    assert_eq!(table.get(&k), Some(k), "{key}: lost private write");
                    if i % 3 == 0 {
                        assert_eq!(table.remove(&k), Some(k), "{key}: lost removal");
                    }
                    if i % 5 == 0 {
                        // Overlapping read-modify-write on the hot key.
                        table.update(HOT, |slot| {
                            *slot = Some(slot.expect("hot key always present") + 1);
                        });
                        hot_adds.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let expect_private: usize = (0..THREADS * PER).filter(|i| i % PER % 3 != 0).count();
    assert_eq!(table.len(), expect_private + 1, "{key}: entry census");
    assert_eq!(
        table.get(&HOT),
        Some(hot_adds.load(Ordering::Relaxed)),
        "{key}: hot-key increments lost under contention"
    );
    let stats = table.stats();
    // insert + get (+ remove/update) per iteration, minimum 2 each.
    assert!(
        stats.acquisitions() >= 2 * THREADS * PER,
        "{key}: census undercounts ({})",
        stats.acquisitions()
    );
}

/// Unwinding out of a shard critical section must release that shard and
/// leave every other shard untouched, for every algorithm.
fn guard_drop_on_panic<L: RawLock + 'static>(key: &str) {
    let table: ShardedTable<u32, u32, L> = ShardedTable::with_shards(4);
    for k in 0..64 {
        table.insert(k, k);
    }
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut g = table.guard(&7);
        g.insert(7, 777);
        panic!("inside shard critical section");
    }));
    assert!(r.is_err());
    // The poisoned-free contract: the shard is immediately reusable and the
    // pre-panic write survived.
    assert_eq!(table.get(&7), Some(777), "{key}");
    table.insert(7, 8);
    assert_eq!(table.get(&7), Some(8), "{key}");
    assert_eq!(table.len(), 64, "{key}: other shards disturbed");
}

macro_rules! gen_shard_suite {
    ($(($key:literal, [$($alias:literal),*], $ty:ty, $cap:ident)),+ $(,)?) => {
        #[test]
        fn concurrent_stress_under_every_catalog_lock() {
            $( stress::<$ty>($key); )+
        }

        #[test]
        fn guard_drop_on_panic_under_every_catalog_lock() {
            $( guard_drop_on_panic::<$ty>($key); )+
        }
    };
}
hemlock_locks::for_each_lock!(gen_shard_suite);

#[test]
fn shard_index_distribution_is_uniform_enough() {
    // Hashing is lock-independent; one algorithm suffices.
    let table: ShardedTable<u64, (), hemlock_core::hemlock::Hemlock> =
        ShardedTable::with_shards(32);
    let n = 32_000u64;
    let mut counts = vec![0u64; table.shards()];
    for k in 0..n {
        counts[table.shard_index(&k)] += 1;
    }
    let ideal = n / table.shards() as u64; // 1000
    for (i, &c) in counts.iter().enumerate() {
        assert!(
            c >= ideal / 2 && c <= ideal * 2,
            "shard {i}: {c} of {n} keys (ideal {ideal})"
        );
    }
}

#[test]
fn census_spreads_with_the_keys() {
    let table: ShardedTable<u64, u64, hemlock_core::hemlock::Hemlock> =
        ShardedTable::with_shards(16);
    for k in 0..4_000 {
        table.insert(k, k);
    }
    let stats = table.stats();
    assert_eq!(stats.acquisitions(), 4_000);
    // No shard should see more than 4x its uniform share of acquisitions.
    assert!(
        stats.imbalance() < 4.0,
        "imbalance {:.2} suggests clumped striping",
        stats.imbalance()
    );
}
