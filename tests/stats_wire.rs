//! End-to-end acceptance for the `STATS` opcode: a kvserver under
//! pipelined traffic answers with nonzero acquisition, batch, and
//! service-time metrics — the live-system observability the subsystem
//! exists for.

use hemlock_core::hemlock::Hemlock;
use hemlock_harness::executor::TaskPool;
use hemlock_minikv::{AsyncKv, Db, Options};
use hemlock_net::{spawn_server_with, Client, Op, ServerOptions};
use hemlock_obs::Snapshot;
use std::sync::Arc;

#[test]
fn stats_opcode_reports_live_metrics() {
    hemlock_obs::init();
    let pool = Arc::new(TaskPool::new(2));
    let kv: Arc<dyn AsyncKv> = Arc::new(Db::<Hemlock>::new(Options::default())).into_async_kv();
    let server = spawn_server_with(
        &pool,
        kv,
        "127.0.0.1:0".parse().unwrap(),
        ServerOptions { combine: true },
    )
    .expect("bind loopback");

    let mut c = Client::connect(server.local_addr()).expect("connect");
    for round in 0..32 {
        let key = format!("key{round:04}");
        c.pipeline(&[
            Op::Put(key.as_bytes(), b"value"),
            Op::Get(key.as_bytes()),
            Op::Get(b"never-written"),
            Op::Delete(key.as_bytes()),
        ])
        .expect("pipelined batch");
    }

    let text = c.stats().expect("STATS round-trip");
    let snap = Snapshot::parse_text(&text);
    let get = |k: &str| {
        snap.iter()
            .find(|(key, _)| key == k)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("key {k:?} missing from STATS text:\n{text}"))
    };

    // The acceptance triple: acquire, batch, and service-time metrics all
    // nonzero under traffic.
    assert!(get("minikv.acquires") > 0.0, "acquire metric:\n{text}");
    assert!(
        get("minikv.batch_size.count") > 0.0,
        "batch metric:\n{text}"
    );
    assert!(get("net.service_ns.count") > 0.0, "RTT metric:\n{text}");
    // And the surrounding bookkeeping is consistent with what we sent:
    // 128 KV ops + the STATS request itself are at least 128 requests
    // over at least one connection.
    assert!(get("net.requests") >= 128.0, "requests:\n{text}");
    assert!(get("net.connections") >= 1.0, "connections:\n{text}");
    assert!(get("minikv.gets") >= 64.0, "gets:\n{text}");
    assert!(get("minikv.puts") >= 32.0, "puts:\n{text}");

    drop(c);
    server.shutdown();
}
