//! Integration checks for the coherence reproduction of Table 2 and the
//! §5.5/§5.6 traffic claims, via the public crate APIs.

use hemlock_coherence::{
    multiwait_offcore, ring, table2, table2_row, Protocol, Table2Algo, WaitMode,
};
use hemlock_simlock::algos::HemlockFlavor;

#[test]
fn table2_api_produces_all_five_rows() {
    let rows = table2(6, 40, Protocol::Mesif, 3);
    assert_eq!(rows.len(), 5);
    let names: Vec<&str> = rows.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, vec!["MCS", "CLH", "Ticket", "Hemlock", "Hemlock-"]);
    assert!(rows.iter().all(|(_, v)| *v > 0.0));
}

#[test]
fn ctr_reduces_offcore_on_all_protocols() {
    for protocol in [Protocol::Mesi, Protocol::Mesif, Protocol::Moesi] {
        let ctr = table2_row(Table2Algo::Hemlock, 8, 60, protocol, 11).offcore_per_pair();
        let naive = table2_row(Table2Algo::HemlockNaive, 8, 60, protocol, 11).offcore_per_pair();
        assert!(
            ctr < naive,
            "{protocol:?}: CTR {ctr} must beat naive {naive}"
        );
    }
}

#[test]
fn paper_ordering_shape_holds() {
    // Hemlock < Hemlock- < MCS/CLH << Ticket (Table 2's ordering).
    let median = |algo| {
        let mut v: Vec<f64> = (0..5)
            .map(|s| table2_row(algo, 12, 50, Protocol::Mesif, s).offcore_per_pair())
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[2]
    };
    let hemlock = median(Table2Algo::Hemlock);
    let naive = median(Table2Algo::HemlockNaive);
    let mcs = median(Table2Algo::Mcs);
    let clh = median(Table2Algo::Clh);
    let ticket = median(Table2Algo::Ticket);
    assert!(hemlock < naive, "{hemlock} < {naive}");
    assert!(naive < mcs, "{naive} < {mcs}");
    assert!(hemlock < clh, "{hemlock} < {clh}");
    assert!(ticket > mcs && ticket > clh && ticket > 2.0 * hemlock);
}

#[test]
fn multiwait_inverts_the_ctr_advantage() {
    // §5.6: CTR harmful under multi-waiting; and the effect grows with the
    // number of locks the leader holds.
    let ctr_small = multiwait_offcore(3, 30, HemlockFlavor::Ctr, Protocol::Mesif, 5);
    let naive_small = multiwait_offcore(3, 30, HemlockFlavor::Naive, Protocol::Mesif, 5);
    let ctr_big = multiwait_offcore(8, 30, HemlockFlavor::Ctr, Protocol::Mesif, 5);
    let naive_big = multiwait_offcore(8, 30, HemlockFlavor::Naive, Protocol::Mesif, 5);
    assert!(ctr_big.totals.offcore_total() > naive_big.totals.offcore_total());
    let small_ratio =
        ctr_small.totals.offcore_total() as f64 / naive_small.totals.offcore_total() as f64;
    let big_ratio = ctr_big.totals.offcore_total() as f64 / naive_big.totals.offcore_total() as f64;
    assert!(
        big_ratio > small_ratio * 0.9,
        "CTR penalty should not shrink with junction degree: {small_ratio} vs {big_ratio}"
    );
}

#[test]
fn ring_rmw_modes_beat_loads_everywhere() {
    for protocol in [Protocol::Mesi, Protocol::Mesif, Protocol::Moesi] {
        let load = ring(6, 100, 4, WaitMode::Load, protocol);
        for mode in [WaitMode::Cas, WaitMode::Swap, WaitMode::Faa] {
            let rmw = ring(6, 100, 4, mode, protocol);
            assert!(
                rmw.offcore_per_hop() < load.offcore_per_hop(),
                "{protocol:?} {mode:?}"
            );
        }
    }
}

#[test]
fn simulated_handover_cost_is_thread_invariant_for_hemlock() {
    // Local spinning: per-pair offcore stays bounded as threads grow, in
    // contrast with Ticket (checked in the crate's unit tests).
    let t4 = table2_row(Table2Algo::Hemlock, 4, 60, Protocol::Mesif, 9).offcore_per_pair();
    let t16 = table2_row(Table2Algo::Hemlock, 16, 60, Protocol::Mesif, 9).offcore_per_pair();
    assert!(t16 < t4 * 2.0 + 2.0, "{t4} → {t16}");
}
