//! # hemlock-suite
//!
//! Workspace umbrella for the Hemlock (SPAA 2021) reproduction: re-exports
//! every crate so that examples and integration tests have a single import
//! surface. The interesting code lives in the member crates:
//!
//! - [`hemlock_core`] — the Hemlock lock family (the paper's contribution),
//!   plus the typed core (`RawLock` + `LockMeta`) and the object-safe
//!   dynamic layer (`DynLock` / `DynMutex`, `DynRwLock` / `DynRwMutex`) of
//!   the three-layer lock API.
//! - [`hemlock_locks`] — MCS / CLH / Ticket / TAS / TTAS / Anderson
//!   baselines, and the unified catalog (`hemlock_locks::catalog`) mapping
//!   string keys to every algorithm for runtime selection (`--lock`).
//! - [`hemlock_rw`] — the reader-writer subsystem: native `HemlockRw`
//!   (striped read-indicator over the grant protocol), the `RwFromRaw`
//!   adapter, and the `rw.*` catalog.
//! - [`hemlock_shard`] — the sharded lock-table subsystem
//!   (`ShardedTable`, `ShardedCounter`).
//! - [`hemlock_simlock`] — lock algorithms as deterministic state machines.
//! - [`hemlock_model`] — schedule exploration checking the §3 theorems.
//! - [`hemlock_coherence`] — MESI/MESIF/MOESI simulator (Table 2, §5.5).
//! - [`hemlock_minikv`] — LevelDB-shaped KV store (Figure 8).
//! - [`hemlock_net`] — networked minikv front-end: length-prefixed wire
//!   protocol, async TCP server on the in-tree `TaskPool`, pipelining
//!   client.
//! - [`hemlock_harness`] — MutexBench and friends (Figures 2–9), plus
//!   the executor/reactor runtime the async subsystems run on.

pub use hemlock_coherence as coherence;
pub use hemlock_core as core;
pub use hemlock_harness as harness;
pub use hemlock_locks as locks;
pub use hemlock_minikv as minikv;
pub use hemlock_model as model;
pub use hemlock_net as net;
pub use hemlock_rw as rw;
pub use hemlock_shard as shard;
pub use hemlock_simlock as simlock;
