//! Machine-checking the paper's Section 3 theorems on small configurations,
//! and reconstructing the Figure 1 multi-waiting junction.
//!
//! Run with: `cargo run --release --example model_check`

use hemlock_model::{build_junction, drain_junction, explore, spin_census, ExploreConfig};
use hemlock_simlock::algos::{ClhSim, HemlockFlavor, HemlockSim, McsSim, TicketSim};
use hemlock_simlock::{LockAlgorithm, Program, World};

fn check<A: LockAlgorithm + Clone>(world: World<A>) {
    let name = world.algo.name();
    let report = explore(world, ExploreConfig::default());
    println!(
        "  {name:<10} {} states, {} terminal, exhaustive: {}, violations: {}",
        report.states,
        report.terminal_states,
        report.exhaustive,
        report.violations.len()
    );
    assert!(report.clean(), "{name}: {:?}", report.violations);
    assert!(report.exhaustive);
}

fn main() {
    println!("Exhaustive interleaving exploration (2 threads, 1 lock, 2 rounds each):");
    println!("  checking: mutual exclusion (Thm 2), FIFO (Thm 8), fere-local spinning (Thm 10), deadlock-freedom");
    let programs = || {
        vec![
            Program::lock_unlock(0, 1, 0, 2),
            Program::lock_unlock(0, 1, 0, 2),
        ]
    };
    check(World::new(
        HemlockSim::new(2, 1, HemlockFlavor::Ctr),
        programs(),
    ));
    check(World::new(
        HemlockSim::new(2, 1, HemlockFlavor::Naive),
        programs(),
    ));
    check(World::new(McsSim::new(2, 1), programs()));
    check(World::new(ClhSim::new(2, 1), programs()));
    check(World::new(TicketSim::new(2, 1), programs()));

    println!("\nFigure 1 junction (thread E holding k locks, k waiters on its one Grant word):");
    for k in 1..=4 {
        let mut junction = build_junction(k, HemlockFlavor::Ctr);
        let census = spin_census(&mut junction.world);
        println!(
            "  k = {k}: census on holder's Grant = {} (Theorem 10 bound = {k})",
            census[0]
        );
        assert_eq!(census[0], k);
        let correct = drain_junction(&mut junction);
        println!("         drained: {correct}/{k} hand-overs woke the right waiter");
        assert_eq!(correct, k);
    }
    println!("\nmodel_check OK — all checked properties hold");
}
