//! A LevelDB-style workload (the paper's Figure 8 scenario): an in-memory
//! KV store whose single coarse-grained mutex is the contended resource.
//! Swap the central lock by changing one type parameter and compare.
//!
//! Run with: `cargo run --release --example kv_store`

use hemlock_core::hemlock::Hemlock;
use hemlock_core::raw::RawLock;
use hemlock_locks::{McsLock, TicketLock};
use hemlock_minikv::{fill_seq, read_random, Db};
use std::time::Duration;

const ENTRIES: u64 = 100_000;

fn readrandom_with<L: RawLock>(threads: usize) -> f64 {
    let db: Db<L> = Db::new(Default::default());
    fill_seq(&db, ENTRIES, 100);
    let result = read_random(&db, threads, ENTRIES, Duration::from_millis(500));
    assert_eq!(result.ops, result.hits, "all keys must be found");
    result.ops_per_sec()
}

fn main() {
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    println!("readrandom over {ENTRIES} entries, {threads} threads, 0.5 s:");
    for (name, rate) in [
        ("Hemlock", readrandom_with::<Hemlock>(threads)),
        ("MCS", readrandom_with::<McsLock>(threads)),
        ("Ticket", readrandom_with::<TicketLock>(threads)),
    ] {
        println!("  {name:<8} {rate:>12.0} ops/s");
    }

    // The store itself is a real KV store: updates, deletes, compaction.
    let db: Db<Hemlock> = Db::new(hemlock_minikv::Options {
        memtable_bytes: 4 << 10,
        max_runs: 4,
        mem_shards: 8,
    });
    for i in 0..10_000u64 {
        db.put(
            format!("user:{i:06}").as_bytes(),
            format!("{{\"id\":{i}}}").as_bytes(),
        );
    }
    for i in (0..10_000u64).step_by(3) {
        db.delete(format!("user:{i:06}").as_bytes());
    }
    let alive = (0..10_000u64)
        .filter(|i| db.get(format!("user:{i:06}").as_bytes()).is_some())
        .count();
    println!(
        "after deletes: {alive} live keys, {} runs, {} compactions",
        db.run_count(),
        db.stats()
            .compactions
            .load(std::sync::atomic::Ordering::Relaxed)
    );
    assert_eq!(alive, 6_666);
    println!("kv_store OK");
}
