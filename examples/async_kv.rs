//! Asynchronous KV traffic: many tasks, few threads, zero parked threads.
//!
//! Demonstrates the `hemlock-async` subsystem end to end:
//!
//! - an [`AsyncMutex`] protecting shared state, with a cancel-safe `lock()`
//!   future (dropping it withdraws the pending acquisition);
//! - minikv's `Db::{put_async, get_async}`: operations that *await* a
//!   freeze/compaction holding the central mutex instead of stalling a
//!   thread or returning `WouldBlock`;
//! - the in-tree executor (`block_on` + `TaskPool`) — no external runtime.
//!
//! Run with: `cargo run --release --example async_kv`

use hemlock_async::AsyncMutex;
use hemlock_core::hemlock::Hemlock;
use hemlock_harness::executor::{block_on, TaskPool};
use hemlock_minikv::{Db, Options};
use std::sync::Arc;

fn main() {
    // 256 logical writers multiplexed over 4 worker threads: the regime a
    // thread-per-waiter design cannot reach. Every contended lock inside —
    // memtable shards, the central run-list mutex — parks the *task*.
    let pool = TaskPool::new(4);
    let db: Arc<Db<Hemlock>> = Arc::new(Db::new(Options {
        memtable_bytes: 16 << 10, // small budget: freezes happen constantly
        ..Options::default()
    }));
    let total_puts = Arc::new(AsyncMutex::<u64>::new(0));

    let tasks = 256;
    let per_task = 100u32;
    let handles: Vec<_> = (0..tasks)
        .map(|t| {
            let db = Arc::clone(&db);
            let total_puts = Arc::clone(&total_puts);
            pool.spawn(async move {
                for i in 0..per_task {
                    let key = format!("task{t:03}-key{i:03}");
                    // A tripped byte budget makes this *await* the freeze
                    // (and any compaction) rather than skip or block.
                    db.put_async(key.as_bytes(), &i.to_be_bytes()).await;
                    *total_puts.lock().await += 1;
                }
                // Read own writes back through the async read path.
                for i in (0..per_task).step_by(17) {
                    let key = format!("task{t:03}-key{i:03}");
                    assert_eq!(
                        db.get_async(key.as_bytes()).await,
                        Some(i.to_be_bytes().to_vec())
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join();
    }

    let puts = block_on(async { *total_puts.lock().await });
    println!(
        "async_kv: {} tasks x {} puts on {} workers -> {} puts, {} freezes, {} compactions, {} runs",
        tasks,
        per_task,
        pool.workers(),
        puts,
        db.stats().freezes.load(std::sync::atomic::Ordering::Relaxed),
        db.stats().compactions.load(std::sync::atomic::Ordering::Relaxed),
        db.run_count(),
    );
    assert_eq!(puts, tasks as u64 * per_task as u64);
}
