//! A networked KV round-trip, end to end, in one process.
//!
//! Demonstrates the `hemlock-net` subsystem:
//!
//! - [`spawn_server`] binds a loopback port and serves a `Db<Hemlock>`
//!   behind the erased `AsyncKv` surface, one `TaskPool` task per
//!   connection — the acceptor is the only dedicated thread;
//! - [`Client`] speaks the length-prefixed binary protocol, both one
//!   request at a time and as a pipelined batch (responses are matched
//!   to requests by id, so a deep pipeline still returns in op order);
//! - graceful shutdown: [`ServerHandle::shutdown`] drains in-flight
//!   requests and reports exactly how many it answered.
//!
//! Run with: `cargo run --release --example net_kv`

use hemlock_core::hemlock::Hemlock;
use hemlock_harness::executor::TaskPool;
use hemlock_minikv::{AsyncKv, Db, Options};
use hemlock_net::{spawn_server, Client, Op, Response};
use std::sync::Arc;

fn main() {
    // Serve a Hemlock-locked Db on an ephemeral loopback port.
    let pool = Arc::new(TaskPool::new(2));
    let kv: Arc<dyn AsyncKv> = Arc::new(Db::<Hemlock>::new(Options::default())).into_async_kv();
    let server = spawn_server(&pool, kv, "127.0.0.1:0".parse().unwrap()).expect("bind loopback");
    println!("net_kv: serving on {}", server.local_addr());

    let mut client = Client::connect(server.local_addr()).expect("connect");

    // One-at-a-time round-trips.
    client.put(b"greeting", b"hello over TCP").unwrap();
    let got = client.get(b"greeting").unwrap();
    assert_eq!(got.as_deref(), Some(&b"hello over TCP"[..]));
    println!(
        "net_kv: get(greeting) -> {:?}",
        String::from_utf8(got.unwrap()).unwrap()
    );

    // A pipelined batch: all eight requests are on the wire before the
    // first response is read.
    let keys: Vec<Vec<u8>> = (0..4).map(|i| format!("key{i}").into_bytes()).collect();
    let mut ops: Vec<Op<'_>> = keys.iter().map(|k| Op::Put(k, b"batched")).collect();
    ops.extend(keys.iter().map(|k| Op::Get(k)));
    let responses = client.pipeline(&ops).unwrap();
    let hits = responses
        .iter()
        .filter(|r| matches!(r, Response::Value { value, .. } if value == b"batched"))
        .count();
    println!(
        "net_kv: pipelined {} ops, {} gets hit",
        responses.len(),
        hits
    );
    assert_eq!(hits, 4);

    client.delete(b"greeting").unwrap();
    assert_eq!(client.get(b"greeting").unwrap(), None);
    drop(client);

    let stats = server.shutdown();
    println!(
        "net_kv: served {} request(s) over {} connection(s), none lost",
        stats.requests, stats.connections
    );
    assert_eq!(stats.requests, 2 + 8 + 2);
    assert_eq!(stats.connections, 1);
}
