//! Multi-lock transactions: the regime where Hemlock's single Grant word
//! *can* be shared by several waiters (§2.2 multi-waiting).
//!
//! A bank with per-account locks; transfers acquire both account locks in
//! a global order (deadlock avoidance) and move money. Because a thread
//! holds two contended locks at once, waiters for *both* can end up
//! spinning on its one Grant word — the instrumented lock reports the
//! observed multi-waiting degree, bounded by Theorem 10 at 2.
//!
//! Run with: `cargo run --release --example bank_transfer`

use hemlock_core::hemlock::HemlockInstrumented;
use hemlock_core::raw::RawLock;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

const ACCOUNTS: usize = 8;
const TRANSFERS_PER_THREAD: usize = 20_000;
const THREADS: usize = 4;
const START_BALANCE: i64 = 1_000;

struct Bank {
    locks: Vec<HemlockInstrumented>,
    balances: Vec<UnsafeCell<i64>>,
}
// Safety: balances[i] is only touched while holding locks[i].
unsafe impl Sync for Bank {}

impl Bank {
    fn transfer(&self, from: usize, to: usize, amount: i64) -> bool {
        assert_ne!(from, to);
        // Lock ordering discipline: lower index first.
        let (a, b) = if from < to { (from, to) } else { (to, from) };
        self.locks[a].lock();
        self.locks[b].lock();
        // Safety: both locks held.
        let ok = unsafe {
            let src = &mut *self.balances[from].get();
            if *src >= amount {
                *src -= amount;
                *self.balances[to].get() += amount;
                true
            } else {
                false
            }
        };
        // Pthread-style arbitrary release order is allowed; release in
        // acquisition order here (not reverse) to exercise it.
        unsafe { self.locks[a].unlock() };
        unsafe { self.locks[b].unlock() };
        ok
    }
}

fn main() {
    let bank = Bank {
        locks: (0..ACCOUNTS).map(|_| HemlockInstrumented::new()).collect(),
        balances: (0..ACCOUNTS)
            .map(|_| UnsafeCell::new(START_BALANCE))
            .collect(),
    };
    // The censuses live in hemlock-obs: plug its sink into the core
    // event seam, then zero the counters for a clean measured window.
    hemlock_obs::census::install();
    hemlock_obs::census::reset();
    let completed = AtomicU64::new(0);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let bank = &bank;
            let completed = &completed;
            s.spawn(move || {
                let mut state = (t as u64 + 1) * 0x9E3779B97F4A7C15;
                for _ in 0..TRANSFERS_PER_THREAD {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let from = (state >> 33) as usize % ACCOUNTS;
                    let to = (from + 1 + (state >> 45) as usize % (ACCOUNTS - 1)) % ACCOUNTS;
                    let amount = (state % 50) as i64;
                    if bank.transfer(from, to, amount) {
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let total: i64 = bank.balances.iter().map(|b| unsafe { *b.get() }).sum();
    let report = hemlock_obs::census::report();
    println!(
        "{} transfers completed; total balance {total} (expected {})",
        completed.load(Ordering::Relaxed),
        ACCOUNTS as i64 * START_BALANCE
    );
    println!("{report}");
    assert_eq!(total, ACCOUNTS as i64 * START_BALANCE, "money is conserved");
    assert_eq!(report.max_locks_held, 2);
    assert!(
        report.max_grant_waiters <= 2,
        "Theorem 10: waiters on one Grant word are bounded by locks held (2), got {}",
        report.max_grant_waiters
    );
    println!(
        "bank_transfer OK — observed multi-waiting degree {} (bound 2)",
        report.max_grant_waiters
    );
}
