//! Quickstart: the Hemlock lock family behind a std-style `Mutex` API.
//!
//! Run with: `cargo run --release --example quickstart`

use hemlock_core::hemlock::{Hemlock, HemlockAh, HemlockV2};
use hemlock_core::{Mutex, RawLock};
use std::sync::Arc;

fn main() {
    // 1. Guard-based mutex over the default (CTR-optimized) Hemlock.
    //    One word of lock state; one padded Grant word per thread,
    //    shared across every Hemlock in the program.
    let counter: Arc<Mutex<u64, Hemlock>> = Arc::new(Mutex::new(0));
    std::thread::scope(|s| {
        for _ in 0..4 {
            let counter = Arc::clone(&counter);
            s.spawn(move || {
                for _ in 0..100_000 {
                    *counter.lock() += 1;
                }
            });
        }
    });
    println!("counter = {} (expected 400000)", *counter.lock());
    assert_eq!(*counter.lock(), 400_000);

    // 2. try_lock: Hemlock supports a trivial trylock (CAS instead of SWAP),
    //    unlike Ticket or CLH.
    let config: Mutex<Vec<&str>, Hemlock> = Mutex::new(vec!["a"]);
    if let Some(mut cfg) = config.try_lock() {
        cfg.push("b");
    }
    println!("config = {:?}", *config.lock());

    // 3. The §2.3 on-stack Grant optimization for lexically scoped sites:
    //    the Grant field lives in this stack frame, reducing multi-waiting
    //    pressure on the thread's shared Grant word.
    let lock = Hemlock::new();
    let answer = lock.with_stack_grant(|| 6 * 7);
    println!("scoped critical section computed {answer}");

    // 4. The lock algorithm is a type parameter: swap in any family member
    //    (or the MCS/CLH/Ticket baselines from `hemlock-locks`).
    fn hammer<L: RawLock>(n: u64) -> u64 {
        let m: Mutex<u64, L> = Mutex::new(0);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    for _ in 0..n {
                        *m.lock() += 1;
                    }
                });
            }
        });
        m.into_inner()
    }
    println!(
        "AH variant: {}, hand-over V2 variant: {}",
        hammer::<HemlockAh>(50_000),
        hammer::<HemlockV2>(50_000)
    );
    println!("quickstart OK");
}
