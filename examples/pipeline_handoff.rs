//! Hand-over-hand ("coupled") locking — the §2.2 pattern that holds two
//! locks at once yet never causes Hemlock multi-waiting.
//!
//! A pipeline of stages, each protected by its own lock; workers traverse
//! stages in order, acquiring stage i+1 before releasing stage i (so items
//! are never unprotected mid-flight). The instrumented lock family
//! measures the §5.4 censuses live: lock-while-holding fires constantly
//! (that is the pattern), max locks held is 2, and — the paper's point —
//! the Grant multi-waiting degree stays at 1: purely local spinning.
//!
//! Run with: `cargo run --release --example pipeline_handoff`

use hemlock_core::hemlock::HemlockInstrumented;
use hemlock_core::raw::RawLock;
use std::cell::UnsafeCell;

const STAGES: usize = 8;
const WORKERS: usize = 4;
const PASSES: usize = 2_000;

struct Pipeline {
    locks: Vec<HemlockInstrumented>,
    stages: Vec<UnsafeCell<u64>>,
}
// Safety: stages[i] is only touched while holding locks[i].
unsafe impl Sync for Pipeline {}

fn main() {
    let pipeline = Pipeline {
        locks: (0..STAGES).map(|_| HemlockInstrumented::new()).collect(),
        stages: (0..STAGES).map(|_| UnsafeCell::new(0)).collect(),
    };
    // The censuses live in hemlock-obs: plug its sink into the core
    // event seam, then zero the counters for a clean measured window.
    hemlock_obs::census::install();
    hemlock_obs::census::reset();

    std::thread::scope(|s| {
        for _ in 0..WORKERS {
            let pipeline = &pipeline;
            s.spawn(move || {
                for _ in 0..PASSES {
                    // Coupled traversal: lock stage 0, then for each next
                    // stage lock it BEFORE releasing the previous one.
                    pipeline.locks[0].lock();
                    for i in 1..STAGES {
                        pipeline.locks[i].lock();
                        // Safety: we hold locks[i-1].
                        unsafe { *pipeline.stages[i - 1].get() += 1 };
                        // Safety: we hold locks[i-1] and are its owner.
                        unsafe { pipeline.locks[i - 1].unlock() };
                    }
                    // Safety: we hold the last lock.
                    unsafe { *pipeline.stages[STAGES - 1].get() += 1 };
                    unsafe { pipeline.locks[STAGES - 1].unlock() };
                }
            });
        }
    });

    let total: u64 = pipeline.stages.iter().map(|s| unsafe { *s.get() }).sum();
    let report = hemlock_obs::census::report();
    println!(
        "processed {total} stage-visits (expected {})",
        (STAGES * WORKERS * PASSES)
    );
    println!("{report}");
    assert_eq!(total, (STAGES * WORKERS * PASSES) as u64);
    assert_eq!(report.max_locks_held, 2, "coupled locking holds exactly 2");
    assert!(
        report.max_grant_waiters <= 1,
        "§2.2: hand-over-hand must not multi-wait (got {})",
        report.max_grant_waiters
    );
    println!("pipeline_handoff OK — coupled locking stayed purely local-spinning");
}
